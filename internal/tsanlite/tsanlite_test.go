package tsanlite

import (
	"errors"
	"testing"

	"repro/internal/machine"
)

func TestDetectsSimpleWAW(t *testing.T) {
	d := New(Config{})
	m := machine.New(machine.Config{Seed: 0, Detector: d})
	a := m.AllocShared(8, 8)
	err := m.Run(func(th *machine.Thread) {
		c := th.Spawn(func(c *machine.Thread) { c.StoreU64(a, 1) })
		th.StoreU64(a, 2)
		th.Join(c)
	})
	var re *machine.RaceError
	if !errors.As(err, &re) || re.Kind != machine.WAW {
		t.Fatalf("err = %v, want WAW", err)
	}
}

func TestMonitorModeCollectsWithoutStopping(t *testing.T) {
	d := New(Config{Monitor: true})
	m := machine.New(machine.Config{Seed: 0, Detector: d})
	a := m.AllocShared(8, 8)
	err := m.Run(func(th *machine.Thread) {
		c := th.Spawn(func(c *machine.Thread) {
			for i := 0; i < 5; i++ {
				c.StoreU64(a, uint64(i))
			}
		})
		for i := 0; i < 5; i++ {
			th.StoreU64(a, uint64(i+100))
		}
		th.Join(c)
	})
	if err != nil {
		t.Fatalf("monitor mode must not stop execution: %v", err)
	}
	if len(d.Races()) == 0 {
		t.Fatal("monitor mode recorded no races on a racy program")
	}
	if len(d.RacyAddrs()) != 1 {
		t.Fatalf("RacyAddrs = %v, want one granule", d.RacyAddrs())
	}
}

func TestNoFalsePositivesOnLockedCounter(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := New(Config{})
		m := machine.New(machine.Config{Seed: seed, Detector: d})
		a := m.AllocShared(8, 8)
		l := m.NewMutex()
		err := m.Run(func(th *machine.Thread) {
			c := th.Spawn(func(c *machine.Thread) {
				for i := 0; i < 10; i++ {
					c.Lock(l)
					c.StoreU64(a, c.LoadU64(a)+1)
					c.Unlock(l)
				}
			})
			for i := 0; i < 10; i++ {
				th.Lock(l)
				th.StoreU64(a, th.LoadU64(a)+1)
				th.Unlock(l)
			}
			th.Join(c)
		})
		if err != nil {
			t.Fatalf("seed %d: false positive: %v", seed, err)
		}
	}
}

func TestEvictionCanMissRaces(t *testing.T) {
	// The imprecision by design: flood a granule with > K accesses from
	// one thread so the other thread's conflicting write is evicted
	// before the racing read arrives. CLEAN (checked in its own tests)
	// would catch this; tsanlite may not. We assert only that the
	// mechanism exists: with enough flooding the race disappears from
	// monitor-mode output for at least one seed.
	missed := false
	for seed := int64(0); seed < 30 && !missed; seed++ {
		d := New(Config{Monitor: true})
		m := machine.New(machine.Config{Seed: seed, Detector: d})
		a := m.AllocShared(8, 8)
		err := m.Run(func(th *machine.Thread) {
			c := th.Spawn(func(c *machine.Thread) {
				c.StoreU8(a, 1) // the write that should race
			})
			th.Work(20) // let the child write first in most schedules
			// Flood the granule's cells with our own accesses ...
			for i := 0; i < 2*K; i++ {
				th.StoreU8(a+1+uint64(i%7), byte(i))
			}
			// ... then perform the access that races with the
			// child's (now possibly evicted) write.
			th.LoadU8(a)
			th.Join(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		sawChildConflict := false
		for _, r := range d.Races() {
			if r.PrevTID == 1 || r.TID == 1 {
				sawChildConflict = true
			}
		}
		if !sawChildConflict {
			missed = true
		}
	}
	if !missed {
		t.Error("expected at least one schedule where eviction hides the race")
	}
}

func TestCrossGranuleAccess(t *testing.T) {
	// An 8-byte access at an odd offset spans two granules; conflicts on
	// both halves must be observable.
	d := New(Config{Monitor: true})
	m := machine.New(machine.Config{Seed: 1, Detector: d})
	a := m.AllocShared(24, 8)
	err := m.Run(func(th *machine.Thread) {
		c := th.Spawn(func(c *machine.Thread) {
			c.Store(a+4, 8, 0xFFFF) // spans [a, a+8) and [a+8, a+16)
		})
		th.Store(a+4, 8, 0xAAAA)
		th.Join(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RacyAddrs()) < 1 {
		t.Fatal("no race recorded for overlapping cross-granule writes")
	}
}

func TestGranuleMaskPreventsFalseConflicts(t *testing.T) {
	// Disjoint bytes of one granule written by different threads do not
	// race.
	for seed := int64(0); seed < 10; seed++ {
		d := New(Config{})
		m := machine.New(machine.Config{Seed: seed, Detector: d})
		a := m.AllocShared(8, 8)
		err := m.Run(func(th *machine.Thread) {
			c := th.Spawn(func(c *machine.Thread) { c.StoreU8(a, 1) })
			th.StoreU8(a+4, 2)
			th.Join(c)
		})
		if err != nil {
			t.Fatalf("seed %d: disjoint bytes reported as racing: %v", seed, err)
		}
	}
}
