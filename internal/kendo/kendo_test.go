package kendo

import (
	"testing"
	"testing/quick"
)

// fakeRT is a Runtime over explicit counter/participation tables.
type fakeRT struct {
	counters []uint64
	parts    []bool
	yields   int
}

func (f *fakeRT) Threads() []int {
	ids := make([]int, len(f.counters))
	for i := range ids {
		ids[i] = i
	}
	return ids
}
func (f *fakeRT) Counter(tid int) uint64     { return f.counters[tid] }
func (f *fakeRT) Participating(tid int) bool { return f.parts[tid] }
func (f *fakeRT) Yield()                     { f.yields++ }

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func TestIsTurnStrictMinimum(t *testing.T) {
	rt := &fakeRT{counters: []uint64{5, 3, 7}, parts: allTrue(3)}
	if IsTurn(rt, 0) {
		t.Error("thread 0 (counter 5) must not have the turn")
	}
	if !IsTurn(rt, 1) {
		t.Error("thread 1 (counter 3, minimum) must have the turn")
	}
	if IsTurn(rt, 2) {
		t.Error("thread 2 (counter 7) must not have the turn")
	}
}

func TestIsTurnTieBrokenByID(t *testing.T) {
	rt := &fakeRT{counters: []uint64{4, 4, 4}, parts: allTrue(3)}
	if !IsTurn(rt, 0) {
		t.Error("lowest id must win the tie")
	}
	if IsTurn(rt, 1) || IsTurn(rt, 2) {
		t.Error("higher ids must lose the tie")
	}
}

func TestIsTurnIgnoresNonParticipants(t *testing.T) {
	rt := &fakeRT{counters: []uint64{9, 1, 2}, parts: []bool{true, false, true}}
	// Thread 1 has the minimum counter but is suspended; thread 2 holds
	// the turn among participants {0, 2}.
	if !IsTurn(rt, 2) {
		t.Error("thread 2 must hold the turn when thread 1 is suspended")
	}
	if IsTurn(rt, 0) {
		t.Error("thread 0 must wait for thread 2")
	}
}

func TestIsTurnSingleThread(t *testing.T) {
	rt := &fakeRT{counters: []uint64{42}, parts: allTrue(1)}
	if !IsTurn(rt, 0) {
		t.Error("a lone thread always holds the turn")
	}
}

// Property: exactly one participating thread holds the turn, for any
// counter assignment with at least one participant.
func TestExactlyOneTurnHolderProperty(t *testing.T) {
	f := func(counters []uint64, partBits uint16) bool {
		n := len(counters)
		if n == 0 || n > 16 {
			return true
		}
		parts := make([]bool, n)
		any := false
		for i := range parts {
			parts[i] = partBits&(1<<i) != 0
			any = any || parts[i]
		}
		if !any {
			parts[0] = true
		}
		rt := &fakeRT{counters: counters, parts: parts}
		holders := 0
		for tid := 0; tid < n; tid++ {
			if parts[tid] && IsTurn(rt, tid) {
				holders++
			}
		}
		return holders == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWaitForTurnYieldsUntilMinimum(t *testing.T) {
	rt := &fakeRT{counters: []uint64{5, 3}, parts: allTrue(2)}
	done := make(chan struct{})
	// Simulate thread 1 advancing past thread 0 on each yield.
	yieldCount := 0
	rtYield := &yieldingRT{fakeRT: rt, onYield: func() {
		yieldCount++
		rt.counters[1] += 3 // other thread catches up and passes
	}}
	go func() {
		WaitForTurn(rtYield, 0)
		close(done)
	}()
	<-done
	if yieldCount == 0 {
		t.Error("thread 0 should have yielded at least once")
	}
	if !IsTurn(rt, 0) {
		t.Error("after WaitForTurn returns, the thread must hold the turn")
	}
}

type yieldingRT struct {
	*fakeRT
	onYield func()
}

func (y *yieldingRT) Yield() { y.onYield() }

func TestWakeCounter(t *testing.T) {
	tests := []struct {
		own, waker, want uint64
	}{
		{0, 0, 1},
		{5, 3, 6},
		{3, 5, 6},
		{7, 7, 8},
	}
	for _, tt := range tests {
		if got := WakeCounter(tt.own, tt.waker); got != tt.want {
			t.Errorf("WakeCounter(%d,%d) = %d, want %d", tt.own, tt.waker, got, tt.want)
		}
	}
}

// waitRecorder records WaitObserver callbacks.
type waitRecorder struct {
	begins int
	ends   int
	yields uint64
}

func (w *waitRecorder) WaitBegin(tid int)              { w.begins++ }
func (w *waitRecorder) WaitEnd(tid int, yields uint64) { w.ends++; w.yields = yields }

func TestWaitForTurnObservedImmediatePassIsSilent(t *testing.T) {
	rt := &fakeRT{counters: []uint64{1, 5}, parts: allTrue(2)}
	rec := &waitRecorder{}
	WaitForTurnObserved(rt, 0, rec)
	if rec.begins != 0 || rec.ends != 0 {
		t.Fatalf("immediate pass produced callbacks: %+v", rec)
	}
	if rt.yields != 0 {
		t.Fatalf("immediate pass yielded %d times", rt.yields)
	}
}

func TestWaitForTurnObservedCountsYields(t *testing.T) {
	rt := &fakeRT{counters: []uint64{5, 1}, parts: allTrue(2)}
	// Thread 1 advances on each yield; thread 0 gets the turn once
	// 1's counter passes 5.
	y := &yieldingRT{fakeRT: rt, onYield: func() { rt.counters[1] += 2 }}
	rec := &waitRecorder{}
	WaitForTurnObserved(y, 0, rec)
	if rec.begins != 1 || rec.ends != 1 {
		t.Fatalf("callbacks = %+v, want one begin and one end", rec)
	}
	if rec.yields == 0 {
		t.Fatal("contended wait reported zero yields")
	}
	if !IsTurn(rt, 0) {
		t.Fatal("wait returned without the turn")
	}
}

func TestWaitForTurnObservedNilObserver(t *testing.T) {
	rt := &fakeRT{counters: []uint64{5, 1}, parts: allTrue(2)}
	y := &yieldingRT{fakeRT: rt, onYield: func() { rt.counters[1] += 2 }}
	WaitForTurnObserved(y, 0, nil) // must not panic, must still wait
	if !IsTurn(rt, 0) {
		t.Fatal("nil-observer wait returned without the turn")
	}
}

func TestQueueDepth(t *testing.T) {
	rt := &fakeRT{counters: []uint64{3, 1, 2, 9}, parts: []bool{true, true, true, false}}
	// Thread 1 holds the turn; 0 and 2 wait; 3 is suspended.
	if got := QueueDepth(rt); got != 2 {
		t.Fatalf("QueueDepth = %d, want 2", got)
	}
	rt.parts = []bool{false, true, false, false}
	if got := QueueDepth(rt); got != 0 {
		t.Fatalf("sole participant QueueDepth = %d, want 0", got)
	}
}

// Property: the woken thread is strictly ordered after both its own past
// and the waking event.
func TestWakeCounterOrderingProperty(t *testing.T) {
	f := func(own, waker uint64) bool {
		// Avoid overflow wrap in the property itself.
		if own > 1<<62 || waker > 1<<62 {
			return true
		}
		w := WakeCounter(own, waker)
		return w > own && w > waker
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
