// Package kendo implements the deterministic-synchronization algorithm of
// Olszewski, Ansel and Amarasinghe's Kendo, which CLEAN adopts (§2.4, §3.3)
// to order all synchronization operations deterministically.
//
// Each thread maintains a deterministic progress counter that advances only
// with the thread's own executed operations, never with wall-clock time. A
// thread may perform a synchronization operation only while its counter is
// the strict minimum across all participating threads, with thread id
// breaking ties. Because counters are schedule-independent and every
// synchronization operation is performed at a unique (counter, id) point,
// the total order of synchronization — and with CLEAN's race exceptions,
// every value read — is the same in every execution.
//
// The package is pure algorithm: it sees threads through the Runtime
// interface and owns no scheduling machinery, so its turn-taking and
// counter-assignment rules are unit-testable in isolation. The machine
// package wires it into the simulated scheduler.
package kendo

// Runtime is the view of the thread system Kendo needs: per-thread
// deterministic counters, participation status, and a way to give up the
// processor while waiting for the turn.
type Runtime interface {
	// Threads returns the ids of all threads ever started.
	Threads() []int
	// Counter returns the deterministic counter of thread tid.
	Counter(tid int) uint64
	// Participating reports whether tid competes for the turn: started,
	// not finished, and not suspended in a blocking wait (a thread parked
	// in a condition wait or join is deterministically re-inserted when
	// woken, per WakeCounter).
	Participating(tid int) bool
	// Yield relinquishes the processor so other threads can advance their
	// counters; the caller re-checks its turn when scheduled again.
	Yield()
}

// IsTurn reports whether thread tid currently holds the deterministic turn:
// its counter is ≤ every participating thread's counter, and strictly less
// than the counter of every participating thread with a smaller id.
func IsTurn(rt Runtime, tid int) bool {
	mine := rt.Counter(tid)
	for _, other := range rt.Threads() {
		if other == tid || !rt.Participating(other) {
			continue
		}
		c := rt.Counter(other)
		if c < mine || (c == mine && other < tid) {
			return false
		}
	}
	return true
}

// WaitForTurn spins (yielding the processor) until tid holds the turn.
// Progress: every participating thread either advances its counter with its
// own work or is itself waiting for the turn; the thread with the global
// minimum (counter, id) always passes.
func WaitForTurn(rt Runtime, tid int) {
	for !IsTurn(rt, tid) {
		rt.Yield()
	}
}

// WaitObserver receives the lifecycle of one deterministic-turn wait. The
// telemetry layer implements it to attribute Kendo wait time — the cost
// the paper's §6.1 deterministic-synchronization bars measure — to
// individual threads and waits.
type WaitObserver interface {
	// WaitBegin fires before the first yield of a wait that did not pass
	// immediately; an immediate pass produces no callbacks at all, so the
	// common uncontended case costs nothing.
	WaitBegin(tid int)
	// WaitEnd fires when the turn is finally held, with the number of
	// yields the wait consumed.
	WaitEnd(tid int, yields uint64)
}

// WaitForTurnObserved is WaitForTurn with wait-lifecycle callbacks. A nil
// observer degrades to plain WaitForTurn.
func WaitForTurnObserved(rt Runtime, tid int, obs WaitObserver) {
	if obs == nil {
		WaitForTurn(rt, tid)
		return
	}
	if IsTurn(rt, tid) {
		return
	}
	obs.WaitBegin(tid)
	var yields uint64
	for !IsTurn(rt, tid) {
		yields++
		rt.Yield()
	}
	obs.WaitEnd(tid, yields)
}

// QueueDepth returns the number of participating threads that do not
// currently hold the turn — the depth of the deterministic-wait queue the
// telemetry layer samples at scheduling points.
func QueueDepth(rt Runtime) int {
	depth := 0
	for _, tid := range rt.Threads() {
		if rt.Participating(tid) && !IsTurn(rt, tid) {
			depth++
		}
	}
	return depth
}

// WakeCounter returns the deterministic counter a thread resumes with after
// being woken from a blocking wait (condition wait, join, barrier). The
// woken thread must be ordered after the waking event, so it resumes just
// past the maximum of its own counter and the waker's counter at the wake
// point. The waking operation itself was performed at a deterministic
// (counter, id), so the result is schedule-independent.
func WakeCounter(own, waker uint64) uint64 {
	if waker > own {
		return waker + 1
	}
	return own + 1
}
