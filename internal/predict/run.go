package predict

import (
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/prog"
	"repro/internal/workloads"
)

// Target builds the program under analysis on a fresh machine. Recording
// and every certification replay call Build once each; it must be
// deterministic (same allocations, same spawn structure under the same
// schedule). hashLen bytes at hashAddr are hashed for the certification
// determinism check (hashLen 0 disables the memory hash).
type Target struct {
	Build func(m *machine.Machine) (root func(*machine.Thread), hashAddr uint64, hashLen int)
}

// ProgramTarget adapts an IR program; the determinism hash covers its
// shared region.
func ProgramTarget(p *prog.Program) Target {
	return Target{Build: func(m *machine.Machine) (func(*machine.Thread), uint64, int) {
		root, base := p.Build(m)
		return root, base, p.Region
	}}
}

// WorkloadTarget adapts a benchmark stand-in; the determinism hash
// covers its output region.
func WorkloadTarget(w workloads.Workload, scale workloads.Scale, variant workloads.Variant) Target {
	return Target{Build: func(m *machine.Machine) (func(*machine.Thread), uint64, int) {
		root, out := w.Build(m, scale, variant)
		return root, out.Addr, out.Len
	}}
}

// Defaults for Options zero values.
const (
	DefaultMaxSteps      = 2_000_000
	DefaultMaxCandidates = 512
)

// Options configures a prediction run.
type Options struct {
	// Seed selects the recorded schedule; recording is deterministic
	// given the seed.
	Seed int64
	// MaxSteps bounds the recording run (0 = DefaultMaxSteps). Replays
	// derive their own budget from the recording's size.
	MaxSteps uint64
	// MaxCandidates caps how many screened pairs are taken through the
	// closure + certification pipeline (0 = DefaultMaxCandidates).
	MaxCandidates int
	// Detector builds a fresh certification detector per replay (nil =
	// the CLEAN core detector).
	Detector func() machine.Detector
}

func (o Options) maxSteps() uint64 {
	if o.MaxSteps == 0 {
		return DefaultMaxSteps
	}
	return o.MaxSteps
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates == 0 {
		return DefaultMaxCandidates
	}
	return o.MaxCandidates
}

func (o Options) detector() machine.Detector {
	if o.Detector != nil {
		return o.Detector()
	}
	return core.New(core.Config{})
}

// Access identifies one side of a candidate pair in the recorded trace.
type Access struct {
	Thread int // spawn sequence number
	Index  int // program-order position in the thread
	Addr   uint64
	Size   int
	Write  bool
}

func accessOf(e *Event) Access {
	return Access{Thread: e.Thread, Index: e.Index, Addr: e.Addr, Size: e.Size, Write: e.Kind == KindWrite}
}

// Prediction is one certified predicted race.
type Prediction struct {
	// First and Second are the candidate pair in witness order: Second
	// is the access that completes the race (for a mixed pair the write
	// goes first, realizing it as RAW under CLEAN semantics).
	First, Second Access
	// Kind is the race kind the witness realizes (WAW or RAW).
	Kind machine.RaceKind
	// Schedule is the witness: one spawn sequence number per dispatched
	// event, ending with the racing pair.
	Schedule []int
	// Certified reports that the witness replayed to a detector hit
	// twice with byte-identical outcomes. Run only returns certified
	// predictions; the field is kept explicit for serialization.
	Certified bool
	// Race is the exception the witness replay raised.
	Race *machine.RaceError
	// Hash digests the replayed race identity, the final deterministic
	// counters and the shared-region hash; both replays agreed on it.
	Hash uint64
}

// Result is the outcome of a full prediction run.
type Result struct {
	Recording *Recording
	// Candidates counts conflicting cross-thread pairs the weak screen
	// left unordered (before dedup against already-certified races).
	Candidates int
	// Feasible counts candidate orderings with a sync-preserving witness.
	Feasible int
	// Uncertified counts feasible witnesses whose replay did not raise
	// the predicted exception (the closure ordered the pair through a
	// path the weak screen ignores, or the replay diverged).
	Uncertified int
	// Predictions holds the certified races, deduplicated by realized
	// (kind, address).
	Predictions []Prediction
	// RecordSteps and ReplaySteps split the scheduler-step budget spent
	// recording and certifying; Steps is their sum — the number explore
	// comparisons charge predict with.
	RecordSteps uint64
	ReplaySteps uint64
}

// Steps returns the total scheduler steps spent.
func (r *Result) Steps() uint64 { return r.RecordSteps + r.ReplaySteps }

// Record executes the target once under the seeded scheduler with no
// detector attached — a race must not truncate the trace — and returns
// the recording.
func Record(t Target, o Options) *Recording {
	r := NewRecorder()
	m := machine.New(machine.Config{
		Seed:       o.Seed,
		Tracer:     r,
		YieldEvery: 1,
		MaxSteps:   o.maxSteps(),
	})
	root, _, _ := t.Build(m)
	r.rec.Err = m.Run(root)
	r.rec.Steps = m.Stats().Steps
	return &r.rec
}

type certKey struct {
	kind machine.RaceKind
	addr uint64
}

// Run records one execution of the target and predicts races in its
// sync-preserving reorderings. Every returned prediction is certified:
// its witness schedule re-executed to a detector hit, byte-identically
// across two replays.
func Run(t Target, o Options) *Result {
	rec := Record(t, o)
	res := &Result{Recording: rec, RecordSteps: rec.Steps}
	cands := screen(rec, o.maxCandidates())
	res.Candidates = len(cands)
	if len(cands) == 0 {
		return res
	}
	idx := buildIndex(rec)
	certified := make(map[certKey]bool)
	for _, c := range cands {
		for _, ord := range orderings(c) {
			key := certKey{kind: predictedKind(ord), addr: ord[1].Addr}
			if certified[key] {
				continue
			}
			wit, ok := reorder(rec, idx, ord[0], ord[1])
			if !ok {
				continue
			}
			res.Feasible++
			pred, steps, ok := certify(t, o, rec, wit, ord[0], ord[1])
			res.ReplaySteps += steps
			if !ok {
				res.Uncertified++
				continue
			}
			certified[key] = true
			res.Predictions = append(res.Predictions, pred)
		}
	}
	sort.Slice(res.Predictions, func(i, j int) bool {
		a, b := res.Predictions[i], res.Predictions[j]
		if a.Race.Addr != b.Race.Addr {
			return a.Race.Addr < b.Race.Addr
		}
		return a.Kind < b.Kind
	})
	return res
}

// orderings returns the witness orders to attempt for a candidate pair:
// write-first for a mixed pair (CLEAN detects RAW, not WAR), both orders
// for write/write (the completing access differs, so the realized race
// identity may too).
func orderings(c candidate) [][2]*Event {
	a, b := c.a, c.b
	aw, bw := a.Kind == KindWrite, b.Kind == KindWrite
	switch {
	case aw && bw:
		return [][2]*Event{{a, b}, {b, a}}
	case aw:
		return [][2]*Event{{a, b}}
	default:
		return [][2]*Event{{b, a}}
	}
}

func predictedKind(ord [2]*Event) machine.RaceKind {
	if ord[0].Kind == KindWrite && ord[1].Kind == KindWrite {
		return machine.WAW
	}
	return machine.RAW
}
