package predict

import (
	"errors"
	"hash/fnv"

	"repro/internal/machine"
)

// The certification stage: re-execute the witness schedule on a fresh
// machine with a real detector attached and accept the prediction only
// if the detector raises the predicted exception — and raises it again,
// byte-identically (race identity, final deterministic counters,
// shared-region hash), on a second replay. A prediction that survives is
// not a heuristic: the machine actually executed the schedule into a
// race exception.
//
// The replay driver steers the machine through the Picker hook: it
// dispatches the thread owning the next witness event until the tracer
// observes that event, then advances. Within a thread the witness is
// exactly a program-order prefix (the closure is PO-downward closed), so
// dispatching the target executes only expected events. When the target
// is not runnable — typically a parent blocked in Join waiting for a
// child that has executed its whole recorded trace but not yet exited —
// the driver dispatches any runnable thread whose recorded events are
// exhausted; such a thread can only run to completion. A step budget
// converts any residual wedge into an uncertified prediction rather
// than a hang.

type replay struct {
	rec    *Recording
	wit    []*Event
	cursor int
	seqOf  []int // machine thread id -> spawn sequence
	counts []int // events observed per spawn sequence
}

func newReplay(rec *Recording, wit []*Event) *replay {
	return &replay{
		rec:    rec,
		wit:    wit,
		seqOf:  []int{0},
		counts: make([]int, len(rec.Threads)),
	}
}

func (r *replay) seq(tid int) int {
	if tid >= 0 && tid < len(r.seqOf) {
		return r.seqOf[tid]
	}
	return 0
}

// observe advances the witness cursor when the expected event executes.
// Matching is positional: the i-th observed event of a thread must be
// that thread's i-th recorded event, so kind plus index identifies it.
func (r *replay) observe(tid int, kind Kind) {
	s := r.seq(tid)
	if s >= len(r.counts) {
		return
	}
	j := r.counts[s]
	r.counts[s]++
	if r.cursor < len(r.wit) {
		w := r.wit[r.cursor]
		if w.Thread == s && w.Index == j && w.Kind == kind {
			r.cursor++
		}
	}
}

func (r *replay) Access(tid int, addr uint64, size int, write, shared bool, clock uint32) {
	if !shared {
		return
	}
	k := KindRead
	if write {
		k = KindWrite
	}
	r.observe(tid, k)
}

func (r *replay) Sync(tid int, kind machine.SyncEvent, obj uint64) {
	switch kind {
	case machine.SyncAcquire:
		r.observe(tid, KindAcquire)
	case machine.SyncRelease:
		r.observe(tid, KindRelease)
	case machine.SyncSpawn:
		r.observe(tid, KindFork)
	case machine.SyncJoin:
		r.observe(tid, KindJoin)
	case machine.SyncChanSend, machine.SyncChanRecv:
	default:
		r.observe(tid, KindOther)
	}
}

func (r *replay) Work(tid, n int) { r.observe(tid, KindWork) }

func (r *replay) SpawnChild(parentTID, childTID, childSeq int) {
	for childTID >= len(r.seqOf) {
		r.seqOf = append(r.seqOf, 0)
	}
	r.seqOf[childTID] = childSeq
	for childSeq >= len(r.counts) {
		r.counts = append(r.counts, 0)
	}
}

func (r *replay) ChanArrive(tid int, ch uint64, pos, capacity int) {
	r.observe(tid, KindSend)
}

func (r *replay) ChanComplete(tid int, ch uint64, send bool, pos, capacity int) {
	if !send {
		r.observe(tid, KindRecv)
	}
}

var _ machine.Tracer = (*replay)(nil)
var _ machine.SpawnObserver = (*replay)(nil)
var _ machine.ChanObserver = (*replay)(nil)

// pick steers the scheduler toward the next witness event's thread.
func (r *replay) pick(runnable []*machine.Thread) int {
	if r.cursor < len(r.wit) {
		want := r.wit[r.cursor].Thread
		for i, th := range runnable {
			if th.Seq == want {
				return i
			}
		}
		// The target is blocked. Drain threads that have executed their
		// whole recorded trace — they can only run to exit (unblocking
		// joins), never consume a witness event.
		for i, th := range runnable {
			if s := th.Seq; s < len(r.counts) && s < len(r.rec.Threads) && r.counts[s] >= len(r.rec.Threads[s]) {
				return i
			}
		}
	}
	return 0
}

// outcome captures everything two replays must agree on.
type outcome struct {
	race     *machine.RaceError
	hash     uint64
	steps    uint64
	finished bool // witness cursor reached the end
}

func runWitness(t Target, o Options, rec *Recording, wit []*Event) outcome {
	rp := newReplay(rec, wit)
	budget := 4*uint64(rec.Events) + 8*uint64(len(wit)) + 512
	m := machine.New(machine.Config{
		Detector:   o.detector(),
		Tracer:     rp,
		Picker:     rp.pick,
		YieldEvery: 1,
		MaxSteps:   budget,
	})
	root, hashAddr, hashLen := t.Build(m)
	err := m.Run(root)
	var out outcome
	out.steps = m.Stats().Steps
	out.finished = rp.cursor >= len(rp.wit)
	var race *machine.RaceError
	if errors.As(err, &race) {
		out.race = race
	}
	h := fnv.New64a()
	if out.race != nil {
		put := func(v uint64) {
			var b [8]byte
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
		put(uint64(out.race.Kind))
		put(out.race.Addr)
		put(uint64(out.race.Size))
		put(uint64(out.race.TID))
		put(out.race.SFR)
		put(uint64(out.race.PrevTID))
		put(uint64(out.race.PrevClock))
		for _, c := range m.FinalCounters() {
			put(c)
		}
		if hashLen > 0 {
			put(m.HashMem(hashAddr, hashLen))
		}
		out.hash = h.Sum64()
	}
	return out
}

// certify replays the witness twice and promotes the candidate to a
// certified prediction when both replays raise the predicted exception
// with identical digests. The returned steps charge both replays to the
// prediction budget whether or not certification succeeds.
func certify(t Target, o Options, rec *Recording, wit []*Event, first, second *Event) (Prediction, uint64, bool) {
	want := predictedKind([2]*Event{first, second})
	r1 := runWitness(t, o, rec, wit)
	steps := r1.steps
	if !matches(r1, want, second) {
		return Prediction{}, steps, false
	}
	r2 := runWitness(t, o, rec, wit)
	steps += r2.steps
	if !matches(r2, want, second) || r1.hash != r2.hash || *r1.race != *r2.race {
		return Prediction{}, steps, false
	}
	sched := make([]int, len(wit))
	for i, e := range wit {
		sched[i] = e.Thread
	}
	return Prediction{
		First:     accessOf(first),
		Second:    accessOf(second),
		Kind:      r1.race.Kind,
		Schedule:  sched,
		Certified: true,
		Race:      r1.race,
		Hash:      r1.hash,
	}, steps, true
}

// matches accepts a replay only when the detector fired at the witness's
// final access with the predicted kind — a different exception means the
// schedule realized some other race, which its own candidate pair will
// certify separately.
func matches(o outcome, want machine.RaceKind, second *Event) bool {
	return o.race != nil &&
		o.race.Kind == want &&
		o.race.Addr == second.Addr &&
		o.race.Size == second.Size
}
