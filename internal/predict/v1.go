package predict

import (
	apiv1 "repro/api/v1"
	"repro/internal/telemetry"
)

// SourceMap resolves a worker's i-th recorded operation to a source
// position string ("file:line:col"); gofront-backed callers build one
// from the front end's source map, others pass nil.
type SourceMap func(worker, index int) string

// V1Schedule converts an internal witness (one spawn sequence number per
// dispatched event) to the unified api/v1 shape: run-length-encoded
// worker steps, the root's bookkeeping dropped as implicit.
func V1Schedule(sched []int) *apiv1.WitnessSchedule {
	ws := &apiv1.WitnessSchedule{}
	for _, seq := range sched {
		if seq == 0 {
			continue
		}
		w := seq - 1
		if n := len(ws.Steps); n > 0 && ws.Steps[n-1].Thread == w {
			ws.Steps[n-1].Ops++
			continue
		}
		ws.Steps = append(ws.Steps, apiv1.ScheduleStep{Thread: w, Ops: 1})
	}
	return ws
}

// v1Access converts a recorded access, shifting spawn sequences to
// worker indices (root = -1).
func v1Access(a Access, src SourceMap) apiv1.PredictedAccess {
	out := apiv1.PredictedAccess{
		Thread: a.Thread - 1,
		Index:  a.Index,
		Addr:   a.Addr,
		Size:   a.Size,
		Write:  a.Write,
	}
	if src != nil && out.Thread >= 0 {
		out.Source = src(out.Thread, a.Index)
	}
	return out
}

// V1 converts one prediction to the wire DTO.
func (p *Prediction) V1(src SourceMap) *apiv1.PredictedRace {
	out := apiv1.NewPredictedRace()
	out.Race = p.Kind.String()
	out.First = v1Access(p.First, src)
	out.Second = v1Access(p.Second, src)
	out.Schedule = V1Schedule(p.Schedule)
	out.Certified = p.Certified
	if p.Race != nil {
		out.Witness = &apiv1.RaceWitness{
			Kind:      p.Race.Kind.String(),
			Addr:      p.Race.Addr,
			Size:      p.Race.Size,
			TID:       p.Race.TID,
			SFR:       p.Race.SFR,
			PrevTID:   p.Race.PrevTID,
			PrevClock: p.Race.PrevClock,
			Detector:  p.Race.Detector,
			Schedule:  out.Schedule,
		}
	}
	out.DeterminismHash = telemetry.FormatHash(p.Hash)
	return out
}

// V1 converts a result's certified predictions to wire DTOs.
func (r *Result) V1(src SourceMap) []apiv1.PredictedRace {
	out := make([]apiv1.PredictedRace, 0, len(r.Predictions))
	for i := range r.Predictions {
		out = append(out, *r.Predictions[i].V1(src))
	}
	return out
}
