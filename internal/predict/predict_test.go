package predict

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/prog"
)

// TestLitmusPredictions pins the pipeline's behavior on the curated
// litmus corpus: every racy litmus yields at least one certified
// prediction, every race-free one yields none, and every prediction
// carries the full certification evidence (replayed exception, witness
// schedule, determinism hash).
func TestLitmusPredictions(t *testing.T) {
	for _, l := range prog.Litmuses() {
		res := Run(ProgramTarget(l.P), Options{Seed: 1})
		if l.Racy && len(res.Predictions) == 0 {
			t.Errorf("%s: racy litmus, no predictions (candidates %d, feasible %d, uncertified %d)",
				l.Name, res.Candidates, res.Feasible, res.Uncertified)
		}
		if !l.Racy && len(res.Predictions) != 0 {
			t.Errorf("%s: race-free litmus, %d predictions", l.Name, len(res.Predictions))
		}
		for i, p := range res.Predictions {
			if !p.Certified || p.Race == nil {
				t.Errorf("%s: prediction %d not certified", l.Name, i)
				continue
			}
			if p.Kind != machine.WAW && p.Kind != machine.RAW {
				t.Errorf("%s: prediction %d kind %v; CLEAN predicts only WAW/RAW", l.Name, i, p.Kind)
			}
			if p.Race.Kind != p.Kind {
				t.Errorf("%s: prediction %d replayed as %v, predicted %v", l.Name, i, p.Race.Kind, p.Kind)
			}
			if p.Race.Addr != p.Second.Addr || p.Race.Size != p.Second.Size {
				t.Errorf("%s: prediction %d exception at %#x/%d, witness completes at %#x/%d",
					l.Name, i, p.Race.Addr, p.Race.Size, p.Second.Addr, p.Second.Size)
			}
			if len(p.Schedule) == 0 || p.Hash == 0 {
				t.Errorf("%s: prediction %d missing schedule or hash", l.Name, i)
			}
		}
	}
}

// TestRunDeterministic re-runs the whole pipeline and requires identical
// results: same predictions in the same order with the same hashes. The
// witness schedules are part of the published evidence, so they must not
// wobble between invocations.
func TestRunDeterministic(t *testing.T) {
	for _, name := range []string{"waw", "chan-buffered-racy", "lock-shadow"} {
		p := prog.LitmusByName(name).P
		a := Run(ProgramTarget(p), Options{Seed: 1})
		b := Run(ProgramTarget(p), Options{Seed: 1})
		if len(a.Predictions) != len(b.Predictions) {
			t.Fatalf("%s: %d vs %d predictions across runs", name, len(a.Predictions), len(b.Predictions))
		}
		for i := range a.Predictions {
			pa, pb := a.Predictions[i], b.Predictions[i]
			if pa.Hash != pb.Hash || !reflect.DeepEqual(pa.Schedule, pb.Schedule) || *pa.Race != *pb.Race {
				t.Errorf("%s: prediction %d differs across identical runs", name, i)
			}
		}
	}
}

// TestSeedsCoverDifferentRecordings checks that the recording seed is
// honored: the recorder must observe the schedule the seed selects (the
// recordings differ in dispatch order), while certified race identities
// stay consistent for a program whose race is schedule-independent.
func TestSeedsCoverDifferentRecordings(t *testing.T) {
	p := prog.LitmusByName("waw").P
	for seed := int64(0); seed < 4; seed++ {
		res := Run(ProgramTarget(p), Options{Seed: seed})
		if len(res.Predictions) != 1 {
			t.Fatalf("seed %d: %d predictions, want 1", seed, len(res.Predictions))
		}
		pr := res.Predictions[0]
		if pr.Kind != machine.WAW || pr.Race.Addr != 0 {
			t.Errorf("seed %d: predicted %v @%#x, want WAW @0", seed, pr.Kind, pr.Race.Addr)
		}
	}
}

// TestRecordingShape checks the recorder against the known structure of
// a litmus: two workers, their shared accesses present in program order,
// and the global order covering every recorded event exactly once.
func TestRecordingShape(t *testing.T) {
	rec := Record(ProgramTarget(prog.LitmusByName("waw").P), Options{Seed: 1})
	if rec.Err != nil {
		t.Fatalf("recording failed: %v", rec.Err)
	}
	if len(rec.Threads) < 3 {
		t.Fatalf("recorded %d threads, want root + 2 workers", len(rec.Threads))
	}
	total := 0
	for s := range rec.Threads {
		for j, e := range rec.Threads[s] {
			if e.Thread != s || e.Index != j {
				t.Fatalf("event (%d,%d) self-identifies as (%d,%d)", s, j, e.Thread, e.Index)
			}
			total++
		}
	}
	if total != rec.Events {
		t.Fatalf("Events = %d, but threads hold %d", rec.Events, total)
	}
	for s := 1; s <= 2; s++ {
		var writes int
		for _, e := range rec.Threads[s] {
			if e.Kind == KindWrite {
				writes++
			}
		}
		if writes == 0 {
			t.Errorf("worker %d recorded no writes in the waw litmus", s)
		}
	}
}

// TestCommonLockPairsRejected pins the closure's lock rule: candidate
// pairs whose accesses sit in critical sections of the same lock are
// screened as candidates (no happens-before edge orders them) but must
// never produce a feasible reordering, because including both acquires
// forces the trace-earlier release into the witness and with it the
// other side's access — a cycle the closure rejects.
func TestCommonLockPairsRejected(t *testing.T) {
	res := Run(ProgramTarget(prog.LitmusByName("locked-counter").P), Options{Seed: 1})
	if res.Candidates == 0 {
		t.Fatal("locked-counter should screen candidate pairs (the weak screen ignores locks)")
	}
	if res.Feasible != 0 || len(res.Predictions) != 0 {
		t.Fatalf("locked-counter: %d feasible, %d predicted; want 0/0", res.Feasible, len(res.Predictions))
	}
}

// TestV1Schedule checks the run-length encoding of witness schedules
// into the unified api/v1 shape: root dispatches dropped, consecutive
// same-worker dispatches merged, spawn sequences shifted to worker
// indices.
func TestV1Schedule(t *testing.T) {
	ws := V1Schedule([]int{0, 1, 1, 0, 2, 2, 2, 1})
	want := []struct{ thread, ops int }{{0, 2}, {1, 3}, {0, 1}}
	if len(ws.Steps) != len(want) {
		t.Fatalf("steps %v, want %d entries", ws.Steps, len(want))
	}
	for i, s := range ws.Steps {
		if s.Thread != want[i].thread || s.Ops != want[i].ops {
			t.Errorf("step %d = {%d,%d}, want {%d,%d}", i, s.Thread, s.Ops, want[i].thread, want[i].ops)
		}
	}
}

// TestPredictionV1 checks the wire DTO of a real prediction: schema
// stamp, witness consistency, and the source-map hook.
func TestPredictionV1(t *testing.T) {
	res := Run(ProgramTarget(prog.LitmusByName("waw").P), Options{Seed: 1})
	if len(res.Predictions) != 1 {
		t.Fatalf("%d predictions, want 1", len(res.Predictions))
	}
	src := func(worker, index int) string { return "prog.go:1:1" }
	v1 := res.Predictions[0].V1(src)
	if v1.Schema != 1 || v1.Kind != "clean.v1.predicted-race" {
		t.Errorf("schema stamp %d/%q", v1.Schema, v1.Kind)
	}
	if !v1.Certified || v1.Witness == nil || v1.Schedule == nil {
		t.Fatalf("DTO dropped certification evidence: %+v", v1)
	}
	if v1.Witness.Kind != v1.Race {
		t.Errorf("witness kind %q, predicted %q", v1.Witness.Kind, v1.Race)
	}
	if !reflect.DeepEqual(v1.Witness.Schedule, v1.Schedule) {
		t.Error("witness schedule differs from the prediction's schedule")
	}
	if v1.First.Source != "prog.go:1:1" || v1.Second.Source != "prog.go:1:1" {
		t.Errorf("source map not applied: %q / %q", v1.First.Source, v1.Second.Source)
	}
	if v1.DeterminismHash == "" {
		t.Error("missing determinism hash")
	}
}
