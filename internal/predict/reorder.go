package predict

// The reordering stage: given a screened candidate pair, compute the
// sync-preserving closure of the two program-order prefixes — the least
// set of events that must execute before the pair can run back-to-back —
// and linearize it into a concrete witness schedule. The closure rules
// mirror the Mathur/Pavlogiannis/Viswanathan construction specialized to
// this machine's primitives:
//
//   - prefixes are program-order downward closed;
//   - a join requires the joined thread's entire trace;
//   - a receive requires its matching send's arrival; a send requires
//     the receive that frees its capacity slot (every included event
//     must be able to complete, not merely start);
//   - any event of a thread requires the fork that created it;
//   - of two included critical sections on one lock, the trace-earlier
//     acquire's release must be included (sync-preservation keeps the
//     observed lock order), which in particular rejects pairs that hold
//     a common lock — the earlier holder's release lies beyond its cut;
//   - barrier/condvar/signal events require their observed same-object
//     predecessor.
//
// If any rule demands an event at or beyond either racing access, the
// candidate has no sync-preserving witness and is dropped.

type loc struct{ t, j int }

// index holds per-recording lookup tables the closure needs.
type index struct {
	send    map[uint64]map[int]loc // channel -> queue position -> send arrival
	recv    map[uint64]map[int]loc // channel -> queue position -> receive
	fork    []loc                  // thread seq -> its fork event; {-1,-1} for the root
	rel     [][]int                // rel[t][j] = matching release index for an acquire, -1 if never released
	prev    [][]int                // prev[t][j] = global-order same-object predecessor of a KindOther event, as -1 or an index into flat locs
	prevLoc []loc                  // storage for prev references
}

func buildIndex(rec *Recording) *index {
	idx := &index{
		send: make(map[uint64]map[int]loc),
		recv: make(map[uint64]map[int]loc),
		fork: make([]loc, len(rec.Threads)),
		rel:  make([][]int, len(rec.Threads)),
		prev: make([][]int, len(rec.Threads)),
	}
	for t := range rec.Threads {
		idx.fork[t] = loc{-1, -1}
		idx.rel[t] = make([]int, len(rec.Threads[t]))
		idx.prev[t] = make([]int, len(rec.Threads[t]))
		for j := range idx.rel[t] {
			idx.rel[t][j] = -1
			idx.prev[t][j] = -1
		}
	}
	type tl struct {
		t    int
		lock uint64
	}
	openAcq := make(map[tl]int)
	lastOther := make(map[uint64]loc)
	for _, g := range rec.order {
		if g.done {
			continue
		}
		e := &rec.Threads[g.thread][g.index]
		switch e.Kind {
		case KindFork:
			if e.Child < len(idx.fork) {
				idx.fork[e.Child] = loc{g.thread, g.index}
			}
		case KindAcquire:
			openAcq[tl{g.thread, e.Obj}] = g.index
		case KindRelease:
			if a, ok := openAcq[tl{g.thread, e.Obj}]; ok {
				idx.rel[g.thread][a] = g.index
				delete(openAcq, tl{g.thread, e.Obj})
			}
		case KindSend:
			m := idx.send[e.Obj]
			if m == nil {
				m = make(map[int]loc)
				idx.send[e.Obj] = m
			}
			m[e.Pos] = loc{g.thread, g.index}
		case KindRecv:
			m := idx.recv[e.Obj]
			if m == nil {
				m = make(map[int]loc)
				idx.recv[e.Obj] = m
			}
			m[e.Pos] = loc{g.thread, g.index}
		case KindOther:
			if p, ok := lastOther[e.Obj]; ok {
				idx.prev[g.thread][g.index] = len(idx.prevLoc)
				idx.prevLoc = append(idx.prevLoc, p)
			}
			lastOther[e.Obj] = loc{g.thread, g.index}
		}
	}
	return idx
}

func (idx *index) otherPrev(t, j int) (loc, bool) {
	if p := idx.prev[t][j]; p >= 0 {
		return idx.prevLoc[p], true
	}
	return loc{}, false
}

// closure computes required program-order prefix lengths per thread, or
// reports the candidate infeasible.
func closure(rec *Recording, idx *index, first, second *Event) ([]int, bool) {
	n := len(rec.Threads)
	req := make([]int, n)
	capv := make([]int, n)
	for t := range capv {
		capv[t] = len(rec.Threads[t])
	}
	capv[first.Thread] = first.Index
	capv[second.Thread] = second.Index

	ok := true
	var queue []loc
	include := func(t, count int) {
		if !ok {
			return
		}
		if count > capv[t] {
			ok = false
			return
		}
		for req[t] < count {
			queue = append(queue, loc{t, req[t]})
			req[t]++
		}
	}
	requireFork := func(t int) {
		if f := idx.fork[t]; f.t >= 0 {
			include(f.t, f.j+1)
		}
	}
	requireFork(first.Thread)
	requireFork(second.Thread)
	include(first.Thread, first.Index)
	include(second.Thread, second.Index)

	lockAcqs := make(map[uint64][]loc)
	for ok && len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if l.j == 0 {
			requireFork(l.t)
		}
		e := &rec.Threads[l.t][l.j]
		switch e.Kind {
		case KindJoin:
			if e.Child < n {
				include(e.Child, len(rec.Threads[e.Child]))
			}
		case KindRecv:
			if s, found := idx.send[e.Obj][e.Pos]; found {
				include(s.t, s.j+1)
			} else {
				ok = false
			}
		case KindSend:
			if need := e.Pos - e.Cap; need >= 0 {
				if r, found := idx.recv[e.Obj][need]; found {
					include(r.t, r.j+1)
				} else {
					ok = false
				}
			}
		case KindAcquire:
			for _, a := range lockAcqs[e.Obj] {
				// The trace-earlier of the two acquires must release
				// inside the witness.
				earlier := a
				if rec.Threads[a.t][a.j].G > e.G {
					earlier = l
				}
				if r := idx.rel[earlier.t][earlier.j]; r >= 0 {
					include(earlier.t, r+1)
				} else {
					ok = false
				}
			}
			lockAcqs[e.Obj] = append(lockAcqs[e.Obj], l)
		case KindOther:
			if p, found := idx.otherPrev(l.t, l.j); found {
				include(p.t, p.j+1)
			}
		}
	}
	if !ok {
		return nil, false
	}
	return req, true
}

// reorder computes the closure and linearizes it into a witness: the
// closure's events in an executable order, then the racing pair, first
// before second. Linearization is greedy by observed trace position
// among enabled events, tracking lock and channel state so the schedule
// is executable on a real machine.
func reorder(rec *Recording, idx *index, first, second *Event) ([]*Event, bool) {
	if first.Thread == second.Thread {
		return nil, false
	}
	req, ok := closure(rec, idx, first, second)
	if !ok {
		return nil, false
	}

	n := len(rec.Threads)
	done := make([]int, n)
	total := 0
	for _, c := range req {
		total += c
	}
	lockHeld := make(map[uint64]bool)
	sendsDone := make(map[uint64]int)
	recvsDone := make(map[uint64]int)

	completed := func(t, j int) bool {
		if done[t] <= j {
			return false
		}
		e := &rec.Threads[t][j]
		if e.Kind == KindSend {
			if need := e.Pos - e.Cap; need >= 0 {
				return recvsDone[e.Obj] > need
			}
		}
		return true
	}
	ready := func(t, j int) bool {
		if j > 0 && !completed(t, j-1) {
			return false
		}
		if j == 0 {
			if f := idx.fork[t]; f.t >= 0 && !completed(f.t, f.j) {
				return false
			}
		}
		return true
	}
	enabled := func(t int) bool {
		j := done[t]
		if j >= req[t] || !ready(t, j) {
			return false
		}
		e := &rec.Threads[t][j]
		switch e.Kind {
		case KindAcquire:
			return !lockHeld[e.Obj]
		case KindSend:
			return sendsDone[e.Obj] == e.Pos
		case KindRecv:
			return recvsDone[e.Obj] == e.Pos && sendsDone[e.Obj] > e.Pos
		case KindJoin:
			c := e.Child
			if c >= n || done[c] < req[c] {
				return false
			}
			return req[c] == 0 || completed(c, req[c]-1)
		case KindOther:
			if p, found := idx.otherPrev(t, j); found {
				return completed(p.t, p.j)
			}
		}
		return true
	}

	wit := make([]*Event, 0, total+2)
	for len(wit) < total {
		best, bestG := -1, int(^uint(0)>>1)
		for t := 0; t < n; t++ {
			if enabled(t) {
				if g := rec.Threads[t][done[t]].G; g < bestG {
					best, bestG = t, g
				}
			}
		}
		if best < 0 {
			// Wedged: an included barrier with a missing participant, or
			// a closure edge this linearizer cannot realize.
			return nil, false
		}
		e := &rec.Threads[best][done[best]]
		done[best]++
		switch e.Kind {
		case KindAcquire:
			lockHeld[e.Obj] = true
		case KindRelease:
			lockHeld[e.Obj] = false
		case KindSend:
			sendsDone[e.Obj]++
		case KindRecv:
			recvsDone[e.Obj]++
		}
		wit = append(wit, e)
	}
	if !ready(first.Thread, first.Index) || !ready(second.Thread, second.Index) {
		return nil, false
	}
	wit = append(wit, first, second)
	return wit, true
}
