// Package predict implements sync-preserving predictive race detection:
// from one recorded execution it reports races that other correct
// reorderings of the same trace would exhibit, without paying explore's
// exponential schedule search.
//
// The pipeline has three stages:
//
//  1. Record — run the target once under the seeded scheduler with no
//     detector attached (an exception must not truncate the trace) and
//     capture every shared access and synchronization event, attributed
//     to logical threads by spawn sequence number (thread ids are
//     reused; sequence numbers are not).
//
//  2. Screen — a linear-time weak-vector-clock pass in the style of WCP
//     (Kini/Mathur/Viswanathan, "Dynamic Race Prediction in Linear
//     Time"): order events by program order, fork/join, and the Go
//     memory model's channel edges, but deliberately drop lock
//     release→acquire edges — a sync-preserving reordering may omit an
//     earlier critical section entirely, so lock edges observed in the
//     recording do not constrain the reorderings we search. Conflicting
//     cross-thread pairs left unordered are candidates.
//
//  3. Reorder + certify — for each candidate, compute the
//     sync-preserving closure of the pair's program-order prefixes
//     (Mathur/Pavlogiannis/Viswanathan, "Optimal Prediction of
//     Synchronization-Preserving Races"): the least prefix set that
//     respects join/channel/lock-completion rules. If the closure fits
//     under the pair (no required event lies beyond either access) it
//     linearizes into a witness schedule ending with the two accesses
//     back-to-back, write first. The witness is then re-executed on a
//     fresh machine with a real detector attached; the prediction is
//     reported only if the detector raises the predicted exception, and
//     only if a second replay reproduces it byte-identically (race
//     identity, final deterministic counters, shared-region hash). Every
//     reported race is therefore self-certifying: it comes with a
//     schedule the machine actually executed into a detector hit.
//
// Certification uses the CLEAN core detector by default, so predictions
// inherit CLEAN's semantics: WAW and RAW only (the witness orders a
// mixed pair write-first, realizing it as RAW — WAR is deliberately
// undetected, §3.1 of the paper).
package predict

import (
	"repro/internal/machine"
)

// Kind enumerates recorded event kinds.
type Kind uint8

// Event kinds, in no particular order. KindOther covers barrier,
// condition-variable and signal events, which the analyses treat
// conservatively as operations on a serializing object.
const (
	KindRead Kind = iota
	KindWrite
	KindAcquire
	KindRelease
	KindSend
	KindRecv
	KindFork
	KindJoin
	KindWork
	KindOther
)

var kindNames = [...]string{
	"read", "write", "acquire", "release", "send", "recv", "fork", "join", "work", "sync",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "event"
}

// Event is one recorded operation of one logical thread.
type Event struct {
	Kind   Kind
	Thread int // spawn sequence number of the executing thread (0 = root)
	Index  int // position in the thread's program order
	G      int // position in the recorded global order

	Addr  uint64 // Read/Write: accessed address
	Size  int    // Read/Write: access width in bytes
	Obj   uint64 // machine object id (locks, channels, other sync)
	Child int    // Fork/Join: child thread's spawn sequence number
	Pos   int    // Send/Recv: channel queue position
	Cap   int    // Send/Recv: channel capacity
	Work  int    // Work: units of private computation
}

// gref points into the recording's global order. A send appears twice:
// once at arrival (taking its queue position and publishing its message)
// and once at completion (joining the receive that freed its capacity
// slot); the completion reference carries done=true and shares the
// arrival's program-order event.
type gref struct {
	thread, index int
	done          bool
}

// Recording is one run's event stream grouped by logical thread.
type Recording struct {
	// Threads holds per-thread program orders indexed by spawn sequence
	// number; Threads[0] is the root.
	Threads [][]Event
	// Events counts recorded program-order events across all threads.
	Events int
	// Steps is the scheduler-step cost of the recording run.
	Steps uint64
	// Err is how the recording run ended (nil = clean exit). A deadlocked
	// or truncated run still yields a usable partial trace.
	Err error

	order []gref
}

// Recorder implements machine.Tracer plus the SpawnObserver and
// ChanObserver extensions, building a Recording as the machine runs.
type Recorder struct {
	rec   Recording
	seqOf []int // machine thread id -> spawn sequence (ids are reused)
}

// NewRecorder returns a Recorder ready to be installed as a machine's
// Tracer.
func NewRecorder() *Recorder {
	r := &Recorder{seqOf: []int{0}}
	r.rec.Threads = [][]Event{nil}
	return r
}

// Recording returns the recording built so far.
func (r *Recorder) Recording() *Recording { return &r.rec }

func (r *Recorder) seq(tid int) int {
	if tid >= 0 && tid < len(r.seqOf) {
		return r.seqOf[tid]
	}
	return 0
}

func (r *Recorder) add(tid int, e Event) {
	s := r.seq(tid)
	e.Thread = s
	e.Index = len(r.rec.Threads[s])
	e.G = len(r.rec.order)
	r.rec.Threads[s] = append(r.rec.Threads[s], e)
	r.rec.order = append(r.rec.order, gref{thread: s, index: e.Index})
	r.rec.Events++
}

// Access records a shared access; private memory cannot race and is
// dropped.
func (r *Recorder) Access(tid int, addr uint64, size int, write, shared bool, clock uint32) {
	if !shared {
		return
	}
	k := KindRead
	if write {
		k = KindWrite
	}
	r.add(tid, Event{Kind: k, Addr: addr, Size: size})
}

// Sync records a synchronization event. Channel operations are recorded
// through the ChanObserver hooks instead, which carry queue positions;
// the plain completion event would double-count them.
func (r *Recorder) Sync(tid int, kind machine.SyncEvent, obj uint64) {
	switch kind {
	case machine.SyncAcquire:
		r.add(tid, Event{Kind: KindAcquire, Obj: obj})
	case machine.SyncRelease:
		r.add(tid, Event{Kind: KindRelease, Obj: obj})
	case machine.SyncSpawn:
		r.add(tid, Event{Kind: KindFork, Child: int(obj)})
	case machine.SyncJoin:
		r.add(tid, Event{Kind: KindJoin, Child: int(obj)})
	case machine.SyncChanSend, machine.SyncChanRecv:
	default:
		r.add(tid, Event{Kind: KindOther, Obj: obj})
	}
}

// Work records private computation (kept so replay cursors can track it).
func (r *Recorder) Work(tid, n int) {
	r.add(tid, Event{Kind: KindWork, Work: n})
}

// SpawnChild learns the child's reusable thread id alongside its stable
// spawn sequence number.
func (r *Recorder) SpawnChild(parentTID, childTID, childSeq int) {
	for childTID >= len(r.seqOf) {
		r.seqOf = append(r.seqOf, 0)
	}
	r.seqOf[childTID] = childSeq
	for childSeq >= len(r.rec.Threads) {
		r.rec.Threads = append(r.rec.Threads, nil)
	}
}

// ChanArrive records a send at the point it takes its queue position and
// publishes its message — the origin of the k-th-send→k-th-receive edge,
// which for an unbuffered channel precedes the send's completion.
func (r *Recorder) ChanArrive(tid int, ch uint64, pos, capacity int) {
	r.add(tid, Event{Kind: KindSend, Obj: ch, Pos: pos, Cap: capacity})
}

// ChanComplete records a receive (receives arrive and complete
// atomically) and, for sends, appends a global-order completion marker
// for the capacity-slot join without adding a second program-order event.
func (r *Recorder) ChanComplete(tid int, ch uint64, send bool, pos, capacity int) {
	if !send {
		r.add(tid, Event{Kind: KindRecv, Obj: ch, Pos: pos, Cap: capacity})
		return
	}
	s := r.seq(tid)
	for i := len(r.rec.Threads[s]) - 1; i >= 0; i-- {
		e := &r.rec.Threads[s][i]
		if e.Kind == KindSend && e.Obj == ch && e.Pos == pos {
			r.rec.order = append(r.rec.order, gref{thread: s, index: i, done: true})
			return
		}
	}
}

var _ machine.Tracer = (*Recorder)(nil)
var _ machine.SpawnObserver = (*Recorder)(nil)
var _ machine.ChanObserver = (*Recorder)(nil)
