package predict

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/progen"
	"repro/internal/staticrace"
)

// TestSoundnessFuzz drives ~200 generated programs through the full
// pipeline and checks the two soundness obligations:
//
//  1. Every returned prediction is certified — its witness schedule
//     re-executed (twice, byte-identically) into the predicted detector
//     exception. Run enforces this by construction; the fuzz asserts the
//     evidence really is attached for every program shape the generator
//     produces.
//  2. No prediction is ever reported for a program the static analyzer
//     proves race-free: a certified prediction is an executed race, so
//     one on a RaceFree program would disprove the analyzer or the
//     closure. (The converse does not hold — prediction works from one
//     recorded run and legitimately misses races only other recordings
//     reach.)
func TestSoundnessFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short")
	}
	type gen struct {
		name string
		cfg  func(seed int64) progen.Config
	}
	gens := []gen{
		{"small", progen.SmallConfig},
		{"nested", progen.NestedConfig},
		{"default", progen.DefaultConfig},
	}
	const seedsPerGen = 67 // 3×67 = 201 programs
	programs, predictions, raceFree := 0, 0, 0
	for _, g := range gens {
		for seed := int64(0); seed < seedsPerGen; seed++ {
			p := progen.Generate(g.cfg(seed))
			programs++
			res := Run(ProgramTarget(p), Options{Seed: seed})
			if res.Recording.Err != nil {
				t.Fatalf("%s/%d: recording failed: %v", g.name, seed, res.Recording.Err)
			}
			static := staticrace.Analyze(p).Verdict()
			if static == staticrace.RaceFree {
				raceFree++
				if len(res.Predictions) != 0 {
					t.Errorf("%s/%d: %d predictions on a statically race-free program",
						g.name, seed, len(res.Predictions))
				}
			}
			for i, pr := range res.Predictions {
				predictions++
				if !pr.Certified || pr.Race == nil || pr.Hash == 0 {
					t.Fatalf("%s/%d: prediction %d returned without certification evidence", g.name, seed, i)
				}
				if pr.Kind != machine.WAW && pr.Kind != machine.RAW {
					t.Errorf("%s/%d: prediction %d kind %v outside CLEAN's WAW/RAW model", g.name, seed, i, pr.Kind)
				}
				if pr.Race.Kind != pr.Kind || pr.Race.Addr != pr.Second.Addr {
					t.Errorf("%s/%d: prediction %d replay (%v@%#x) disagrees with witness (%v@%#x)",
						g.name, seed, i, pr.Race.Kind, pr.Race.Addr, pr.Kind, pr.Second.Addr)
				}
			}
		}
	}
	if predictions == 0 {
		t.Fatal("fuzz corpus produced no predictions at all — the pipeline is not firing")
	}
	if raceFree == 0 {
		t.Fatal("fuzz corpus contained no race-free programs — the negative obligation went unexercised")
	}
	t.Logf("%d programs (%d race-free), %d certified predictions", programs, raceFree, predictions)
}
