package predict

// The screening pass: a single linear sweep over the recorded global
// order maintaining one vector clock per logical thread, with one
// component per thread and every event ticking its own component. Only
// edges that every sync-preserving reordering must respect are applied —
// program order, fork/join, and the Go memory model's channel edges
// (send k happens before receive k completes; receive k happens before
// send k+C completes). Lock release→acquire edges are deliberately
// dropped: a reordering may omit the earlier critical section, so an
// ordering observed through a lock is not a constraint on the search
// space. Barrier/condvar/signal events are chained per object in
// observed order, a conservative over-approximation.
//
// Two conflicting accesses left unordered by this weak relation may race
// in some reordering; pairs it orders cannot, so they are screened out
// before the quadratic-in-candidates closure work.

// uvc is the screen's vector clock: one uint32 per logical thread.
type uvc []uint32

func (v uvc) join(o uvc) {
	for i, c := range o {
		if c > v[i] {
			v[i] = c
		}
	}
}

func (v uvc) clone() uvc {
	c := make(uvc, len(v))
	copy(c, v)
	return c
}

// candidate is a conflicting cross-thread pair unordered under the weak
// screen, with a.G < b.G.
type candidate struct {
	a, b *Event
}

func overlaps(a, b *Event) bool {
	return a.Addr < b.Addr+uint64(b.Size) && b.Addr < a.Addr+uint64(a.Size)
}

// screen runs the weak-vector-clock pass and returns up to max unordered
// conflicting pairs in deterministic (trace) order.
func screen(rec *Recording, max int) []candidate {
	n := len(rec.Threads)
	if n < 2 {
		return nil
	}
	tvc := make([]uvc, n)
	for i := range tvc {
		tvc[i] = make(uvc, n)
	}
	sendVC := make(map[uint64][]uvc)
	recvVC := make(map[uint64][]uvc)
	otherVC := make(map[uint64]uvc)

	// accs collects shared accesses with the clock snapshot taken at
	// their execution point.
	type acc struct {
		e    *Event
		snap uvc
	}
	var accs []acc

	for _, g := range rec.order {
		e := &rec.Threads[g.thread][g.index]
		me := tvc[g.thread]
		if g.done {
			// Send completion: join the receive that freed its slot.
			if need := e.Pos - e.Cap; need >= 0 {
				if rv := recvVC[e.Obj]; need < len(rv) {
					me.join(rv[need])
				}
			}
			continue
		}
		me[g.thread]++
		switch e.Kind {
		case KindRead, KindWrite:
			accs = append(accs, acc{e: e, snap: me.clone()})
		case KindFork:
			if e.Child < n {
				tvc[e.Child].join(me)
			}
		case KindJoin:
			if e.Child < n {
				me.join(tvc[e.Child])
			}
		case KindSend:
			sv := sendVC[e.Obj]
			for len(sv) <= e.Pos {
				sv = append(sv, nil)
			}
			sv[e.Pos] = me.clone()
			sendVC[e.Obj] = sv
		case KindRecv:
			if sv := sendVC[e.Obj]; e.Pos < len(sv) && sv[e.Pos] != nil {
				me.join(sv[e.Pos])
			}
			rv := recvVC[e.Obj]
			for len(rv) <= e.Pos {
				rv = append(rv, nil)
			}
			rv[e.Pos] = me.clone()
			recvVC[e.Obj] = rv
		case KindOther:
			if o := otherVC[e.Obj]; o != nil {
				me.join(o)
			}
			otherVC[e.Obj] = me.clone()
		case KindAcquire, KindRelease, KindWork:
			// Program order only under the weak screen.
		}
	}

	var out []candidate
	for j := 1; j < len(accs); j++ {
		for i := 0; i < j; i++ {
			a, b := accs[i], accs[j]
			if a.e.Thread == b.e.Thread {
				continue
			}
			if a.e.Kind != KindWrite && b.e.Kind != KindWrite {
				continue
			}
			if !overlaps(a.e, b.e) {
				continue
			}
			// a precedes b in the trace, so only the forward ordering can
			// hold: a is before b iff b's snapshot covers a's own tick.
			if b.snap[a.e.Thread] >= a.snap[a.e.Thread] {
				continue
			}
			out = append(out, candidate{a: a.e, b: b.e})
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}
