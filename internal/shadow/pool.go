// Shadow-page free list and process-wide footprint accounting.
//
// The paper's rollover reset (§4.5) remaps epoch pages to the kernel zero
// page — the physical frames stay allocated and are reused for the next
// epoch era. This file is the software analogue: released pages park on a
// bounded free list with their expensive per-byte arrays still attached,
// and the next region (the next service job, or the same region after a
// rollover Reset) re-materializes out of the list instead of the garbage
// collector. getPage zeroes only the 264-byte adaptive header (line
// epochs + expansion bitmap), never the 16 KiB per-byte store — exactly
// the remap-not-rewrite trade the paper makes — which is what keeps
// steady-state shadow allocation at ~zero under sustained service load.
//
// The package-level gauges below track live footprint across ALL
// unreleased regions in the process; the service /metrics snapshot and the
// cleanstress soak curves read them through Global.
package shadow

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// poolCap bounds the free list. 1024 pages ≈ 4 MiB of data coverage; with
// per-byte arrays attached a full list retains ≤ ~17 MiB, a deliberate
// ceiling on memory parked for reuse.
const poolCap = 1024

var pagePool struct {
	mu    sync.Mutex
	pages []*page
}

// Live footprint across all unreleased regions (adaptive and concurrent).
var (
	gMappedPages   atomic.Int64
	gExpandedLines atomic.Int64
	gExpansions    atomic.Uint64
	gCollapses     atomic.Uint64
)

// Free-list traffic counters.
var (
	gPoolHits   atomic.Uint64
	gPoolMisses atomic.Uint64
	gPoolPuts   atomic.Uint64
	gPoolDrops  atomic.Uint64
)

// getPage returns a zero-state adaptive page, recycling from the free list
// when possible. Recycled pages keep their per-byte arrays: only the
// compact header is scrubbed, so a pool hit costs a 264-byte clear and
// re-expansion after a hit allocates nothing.
func getPage() *page {
	pagePool.mu.Lock()
	n := len(pagePool.pages)
	if n == 0 {
		pagePool.mu.Unlock()
		gPoolMisses.Add(1)
		return new(page)
	}
	p := pagePool.pages[n-1]
	pagePool.pages[n-1] = nil
	pagePool.pages = pagePool.pages[:n-1]
	pagePool.mu.Unlock()
	gPoolHits.Add(1)
	p.lineEpoch = [LinesPerPage]uint32{}
	p.expanded = 0
	return p
}

// putPage parks a released page on the free list, dropping it to the
// garbage collector when the list is full.
func putPage(p *page) {
	pagePool.mu.Lock()
	if len(pagePool.pages) < poolCap {
		pagePool.pages = append(pagePool.pages, p)
		pagePool.mu.Unlock()
		gPoolPuts.Add(1)
		return
	}
	pagePool.mu.Unlock()
	gPoolDrops.Add(1)
}

// GlobalStats is a snapshot of process-wide shadow footprint: the live
// gauges summed over every unreleased Region plus free-list state. The
// service exports it at /metrics; a flat MappedPages/MetadataBytes curve
// under sustained load is the recycling working as designed.
type GlobalStats struct {
	MappedPages   int64  // pages live in unreleased regions
	LinesCompact  int64  // live lines in compact form
	LinesExpanded int64  // live lines in per-byte form
	MetadataBytes int64  // logical live metadata bytes (see Region.MetadataBytes)
	Expansions    uint64 // cumulative compact→expanded transitions
	Collapses     uint64 // cumulative expanded→compact transitions

	PoolPages         int    // pages parked on the free list
	PoolRetainedBytes int64  // physical bytes retained by parked pages
	PoolHits          uint64 // materializations served from the list
	PoolMisses        uint64 // materializations that had to allocate
	PoolPuts          uint64 // pages parked by Release/Reset
	PoolDrops         uint64 // pages dropped because the list was full
}

// HitRate returns the fraction of page materializations served by the free
// list, in [0,1]; 0 when nothing has been materialized yet.
func (g GlobalStats) HitRate() float64 {
	total := g.PoolHits + g.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(g.PoolHits) / float64(total)
}

// Global returns the current process-wide shadow footprint snapshot.
// Gauges are read individually and can be momentarily inconsistent with
// each other under concurrent mutation; negative transients clamp to zero.
func Global() GlobalStats {
	pages := gMappedPages.Load()
	expanded := gExpandedLines.Load()
	if pages < 0 {
		pages = 0
	}
	if expanded < 0 {
		expanded = 0
	}
	compact := pages*LinesPerPage - expanded
	if compact < 0 {
		compact = 0
	}
	g := GlobalStats{
		MappedPages:   pages,
		LinesCompact:  compact,
		LinesExpanded: expanded,
		MetadataBytes: pages*LinesPerPage*4 + expanded*LineBytes*4,
		Expansions:    gExpansions.Load(),
		Collapses:     gCollapses.Load(),
		PoolHits:      gPoolHits.Load(),
		PoolMisses:    gPoolMisses.Load(),
		PoolPuts:      gPoolPuts.Load(),
		PoolDrops:     gPoolDrops.Load(),
	}
	pagePool.mu.Lock()
	g.PoolPages = len(pagePool.pages)
	for _, p := range pagePool.pages {
		g.PoolRetainedBytes += int64(unsafe.Sizeof(page{}))
		if p.bytes != nil {
			g.PoolRetainedBytes += PageBytes * 4
		}
	}
	pagePool.mu.Unlock()
	return g
}
