// Package shadow implements CLEAN's software epoch region (§4.2): one
// 32-bit epoch per byte of program data, at a fixed offset from the data
// address, so EPOCH_ADDRESS is a shift-and-add.
//
// The paper reserves a large fixed region of virtual address space and
// relies on demand paging so that only epochs for touched data consume
// physical memory; the deterministic rollover reset (§4.5) then remaps all
// epoch pages to the kernel zero page instead of writing zeroes. This
// package reproduces both properties with a lazily populated page table:
// untouched pages cost nothing, and Reset drops every page in O(pages).
//
// On top of the page table the region is adaptive-granularity, modelling
// the compact/expanded epoch lines of the paper's Fig. 5: each 64-byte
// line of a page holds a single compact epoch while all of its bytes
// agree, and expands to a per-byte epoch array only on the first divergent
// store (a dedup-style copy-out of the compact value). Range stores that
// cover a whole line collapse it back to compact form, partial stores
// re-compact opportunistically when they leave the line uniform, and Reset
// recompacts everything by construction. The shape this buys:
//
//   - LoadAllEqual over a compact line is ONE epoch compare, the software
//     analogue of the paper's line-level vector check (§4.4) — and the
//     common case, since >99.7% of multi-byte accesses see uniform epochs.
//   - Expanded lines are scanned word-at-a-time: the per-byte epochs are
//     backed by a uint64 array (two packed epochs per word), so an 8-byte
//     check is four word compares instead of eight 32-bit loads.
//   - Pages are recycled through a process-wide free list (see pool.go),
//     so steady-state serving re-materializes shadow for each job out of
//     the pool instead of the garbage collector.
//
// The region is structured as a page-handle fast lane: every operation
// resolves its page exactly once and then works on the page's line table
// directly, and a last-page cache — the same trick ThreadSanitizer's
// direct-mapped shadow plays with its application/shadow offset — makes
// the common same-page access skip the page table entirely.
//
// Two synchronization modes exist:
//
//   - New returns an unsynchronized region. The cooperative machine
//     dispatches one thread at a time, so every detector check is already
//     serialized and the region can use plain loads and stores — this is
//     the §4.2 fast lane, and the mode every detector uses. Only this
//     mode uses compact lines and the page pool.
//   - NewConcurrent returns a region whose single-epoch operations are
//     atomic (sync/atomic on the backing words) and whose page table is
//     lock-protected, so the compare-and-swap update of §4.3 keeps its
//     meaning when the region is driven from truly concurrent goroutines,
//     as the stress tests do. Concurrent pages materialize fully expanded
//     (atomics need a stable per-byte cell) and are not pooled.
//
// Every multi-byte operation reports per-byte-equivalent epoch-load
// counts: a compact line validated by one compare still counts as having
// inspected each covered byte, so core.Stats.EpochLoads — and the golden
// run reports pinned on it — are independent of the compact/expanded state
// a line happens to be in.
package shadow

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/vclock"
)

// PageShift is log2(PageBytes); the page index of an address is one shift.
const PageShift = 12

// PageBytes is the number of data bytes covered by one shadow page. Each
// page backs up to PageBytes epochs (4×PageBytes metadata bytes when fully
// expanded, mirroring the 1:4 data:metadata ratio of §4.2) but only
// LinesPerPage compact epochs while its lines are uniform.
const PageBytes = 1 << PageShift

// pageMask extracts the intra-page offset of an address.
const pageMask = PageBytes - 1

// LineShift is log2(LineBytes); the line index of an intra-page offset is
// one shift.
const LineShift = 6

// LineBytes is the number of data bytes covered by one epoch line — the
// cache-line granularity of the paper's Fig. 5 compact entries.
const LineBytes = 1 << LineShift

// LinesPerPage is the number of epoch lines in one shadow page.
const LinesPerPage = PageBytes / LineBytes

// wordsPerLine is the number of packed uint64 words backing one expanded
// line: two 32-bit epochs per word.
const wordsPerLine = LineBytes / 2

// Region is the epoch shadow for a simulated address space. The zero value
// is not ready for use; call New or NewConcurrent.
type Region struct {
	// concurrent selects atomic epoch operations and a locked page table;
	// unset, the region relies on the machine's serialization of checks.
	concurrent bool

	// lastIdx/lastPage cache the most recently resolved page (unsynchronized
	// mode only): the common same-page access skips the map entirely.
	lastIdx  uint64
	lastPage *page

	pages map[uint64]*page
	mu    sync.RWMutex // guards pages in concurrent mode

	// expandedLines counts lines currently in expanded (per-byte) form
	// across all of the region's pages. Unsynchronized mode only; a
	// concurrent region's pages are always fully expanded.
	expandedLines int

	// resets counts completed Reset calls, reported by the Table 1
	// experiment as the number of rollover resets.
	resets atomic.Uint64
}

// pageEpochs is the expanded per-byte epoch store of one page. The backing
// array is uint64 so the storage is 8-byte aligned by construction and
// uniformity scans can compare two packed epochs per load; epochs() views
// the same memory as the per-byte uint32 array.
type pageEpochs struct {
	words [PageBytes / 2]uint64
}

// epochs returns the per-byte uint32 view of the packed word array.
func (pe *pageEpochs) epochs() *[PageBytes]uint32 {
	return (*[PageBytes]uint32)(unsafe.Pointer(&pe.words))
}

// page is one shadow page in adaptive form: a compact epoch per line, a
// bitmap of which lines have expanded to per-byte entries, and the lazily
// allocated per-byte store. A recycled page keeps its bytes array attached
// (see pool.go) so re-expansion after Reset allocates nothing.
type page struct {
	lineEpoch [LinesPerPage]uint32
	expanded  uint64 // bit l set ⇒ line l is per-byte in bytes
	bytes     *pageEpochs
}

// pattern doubles a 32-bit epoch into the packed-word compare pattern.
func pattern(e uint32) uint64 { return uint64(e)<<32 | uint64(e) }

// New returns an empty unsynchronized shadow region: the fast lane for
// detectors driven from the cooperative machine, which serializes all
// checks. Use NewConcurrent when the region is shared between goroutines.
func New() *Region {
	return &Region{pages: make(map[uint64]*page)}
}

// NewConcurrent returns an empty shadow region safe for concurrent use:
// single-epoch operations are atomic and the page table is lock-protected.
func NewConcurrent() *Region {
	return &Region{concurrent: true, pages: make(map[uint64]*page)}
}

// Load returns the epoch of the data byte at addr. Untouched bytes read as
// the zero epoch, which happens-before everything.
func (r *Region) Load(addr uint64) vclock.Epoch {
	if !r.concurrent {
		if p := r.lastPage; p != nil && r.lastIdx == addr>>PageShift {
			off := addr & pageMask
			line := off >> LineShift
			if p.expanded&(1<<line) == 0 {
				return vclock.Epoch(p.lineEpoch[line])
			}
			return vclock.Epoch(p.bytes.epochs()[off])
		}
	}
	p := r.lookup(addr >> PageShift)
	if p == nil {
		return 0
	}
	off := addr & pageMask
	if r.concurrent {
		return vclock.Epoch(atomic.LoadUint32(&p.bytes.epochs()[off]))
	}
	line := off >> LineShift
	if p.expanded&(1<<line) == 0 {
		return vclock.Epoch(p.lineEpoch[line])
	}
	return vclock.Epoch(p.bytes.epochs()[off])
}

// Store unconditionally sets the epoch of the data byte at addr. On a
// compact line a store of the line's own epoch is a no-op; a divergent
// store expands the line (copying the compact epoch out to every byte)
// first — the Fig. 5 expansion event.
func (r *Region) Store(addr uint64, e vclock.Epoch) {
	p := r.ensure(addr >> PageShift)
	off := addr & pageMask
	if r.concurrent {
		atomic.StoreUint32(&p.bytes.epochs()[off], uint32(e))
		return
	}
	line := off >> LineShift
	if p.expanded&(1<<line) == 0 {
		if p.lineEpoch[line] == uint32(e) {
			return
		}
		r.expandLine(p, uint(line))
	}
	p.bytes.epochs()[off] = uint32(e)
}

// CompareAndSwap replaces the epoch at addr with new if it still equals
// old, reporting whether the swap happened. A failed swap on a write check
// is exactly how a concurrent WAW race manifests in software CLEAN (§4.3).
// In unsynchronized mode the machine's serialization of checks supplies
// the atomicity; in concurrent mode it is a hardware CAS. A successful
// swap on a compact line expands it only when the value actually changes.
func (r *Region) CompareAndSwap(addr uint64, old, new vclock.Epoch) bool {
	p := r.ensure(addr >> PageShift)
	off := addr & pageMask
	if r.concurrent {
		return atomic.CompareAndSwapUint32(&p.bytes.epochs()[off], uint32(old), uint32(new))
	}
	line := off >> LineShift
	if p.expanded&(1<<line) == 0 {
		if p.lineEpoch[line] != uint32(old) {
			return false
		}
		if old == new {
			return true // value unchanged: the line stays compact
		}
		r.expandLine(p, uint(line))
		p.bytes.epochs()[off] = uint32(new)
		return true
	}
	w := &p.bytes.epochs()[off]
	if *w != uint32(old) {
		return false
	}
	*w = uint32(new)
	return true
}

// LoadAllEqual loads the epochs of the n data bytes starting at addr and
// reports whether they all hold the same value, returning that value when
// they do. This is the software analogue of the vector load + vector
// compare of §4.4: a multi-byte access on a compact line is validated by
// ONE epoch compare, and expanded lines are scanned two epochs per uint64
// word. Page-crossing ranges resolve each covered page once and scan tight
// per-page segments; unmapped pages read as runs of zero epochs.
//
// loads is the per-byte-equivalent number of epoch words inspected — n
// when the range is uniform (or entirely unmapped), first-mismatch-index+1
// when a mismatch stops the scan early — regardless of how few physical
// compares the compact/packed representations needed. Detectors use it to
// keep their epoch-load counters honest and deterministic.
func (r *Region) LoadAllEqual(addr uint64, n int) (e vclock.Epoch, allEqual bool, loads int) {
	if n <= 0 {
		return 0, true, 0
	}
	if r.concurrent {
		// Concurrent mode: per-byte atomic loads.
		e = r.Load(addr)
		for i := 1; i < n; i++ {
			if r.Load(addr+uint64(i)) != e {
				return e, false, i + 1
			}
		}
		return e, true, n
	}
	idx := addr >> PageShift
	off := int(addr & pageMask)
	// Fast lane: the whole range inside one line of the cached page — the
	// shape of nearly every detector check (≤8-byte access, hot page).
	if p := r.lastPage; p != nil && r.lastIdx == idx && (off+n-1)>>LineShift == off>>LineShift {
		line := off >> LineShift
		if p.expanded&(1<<uint(line)) == 0 {
			return vclock.Epoch(p.lineEpoch[line]), true, n
		}
		e0 := p.bytes.epochs()[off]
		if mi := scanExpanded(p.bytes, off, n, e0); mi >= 0 {
			return vclock.Epoch(e0), false, mi + 1
		}
		return vclock.Epoch(e0), true, n
	}
	p := r.lookup(idx)
	var e0 uint32
	if p != nil {
		e0 = epochAt(p, off)
	}
	scanned := 0
	for {
		run := PageBytes - off
		if run > n {
			run = n
		}
		if p == nil {
			// Unmapped page: a run of zero epochs.
			if e0 != 0 {
				return vclock.Epoch(e0), false, scanned + 1
			}
		} else if mi := scanPage(p, off, run, e0); mi >= 0 {
			return vclock.Epoch(e0), false, scanned + mi + 1
		}
		scanned += run
		n -= run
		if n == 0 {
			return vclock.Epoch(e0), true, scanned
		}
		idx++
		off = 0
		p = r.lookup(idx)
	}
}

// epochAt reads one epoch out of an adaptive page (unsynchronized mode).
func epochAt(p *page, off int) uint32 {
	line := off >> LineShift
	if p.expanded&(1<<line) == 0 {
		return p.lineEpoch[line]
	}
	return p.bytes.epochs()[off]
}

// scanPage verifies that the n epochs at intra-page offset off all equal
// want, returning the offset-relative index of the first mismatching byte
// or -1 when the segment is uniform. Compact lines cost one compare for up
// to 64 bytes; expanded lines are scanned word-at-a-time.
func scanPage(p *page, off, n int, want uint32) int {
	i := 0
	for i < n {
		line := (off + i) >> LineShift
		run := (line+1)*LineBytes - (off + i) // bytes left in this line
		if run > n-i {
			run = n - i
		}
		if p.expanded&(1<<line) == 0 {
			if p.lineEpoch[line] != want {
				return i
			}
		} else if mi := scanExpanded(p.bytes, off+i, run, want); mi >= 0 {
			return i + mi
		}
		i += run
	}
	return -1
}

// scanExpanded verifies n per-byte epochs starting at intra-page offset
// off against want, two epochs per uint64 compare, returning the
// offset-relative index of the first mismatch or -1. The word pattern
// holds want in both halves, so the compare is endianness-agnostic; only
// mismatch recovery consults the per-epoch view.
func scanExpanded(pe *pageEpochs, off, n int, want uint32) int {
	ep := pe.epochs()
	i, end := off, off+n
	if i&1 == 1 { // unaligned head: one epoch
		if ep[i] != want {
			return 0
		}
		i++
	}
	pat := pattern(want)
	for ; i+2 <= end; i += 2 {
		if pe.words[i>>1] != pat {
			if ep[i] != want {
				return i - off
			}
			return i + 1 - off
		}
	}
	if i < end && ep[i] != want {
		return i - off
	}
	return -1
}

// CompareAndSwapRange performs the wide-CAS update of §4.4: the n epochs
// starting at addr are swapped from old to new as one operation. The
// hardware analogue is a 128-bit CAS covering four epochs; in software the
// leading epoch is checked and the rest stored, which is atomic here
// because the machine serializes race checks (callers needing true
// concurrent atomicity per epoch use CompareAndSwap). It reports false — a
// WAW race, §4.3 — when the leading epoch no longer holds old. Fully
// covered lines collapse back to compact form as they are written.
func (r *Region) CompareAndSwapRange(addr uint64, n int, old, new vclock.Epoch) bool {
	if n <= 0 {
		return true
	}
	if r.concurrent {
		if !r.CompareAndSwap(addr, old, new) {
			return false
		}
		r.StoreRange(addr+1, n-1, new)
		return true
	}
	p := r.ensure(addr >> PageShift)
	off := int(addr & pageMask)
	// Fast lane: the whole range inside one line. The leading-epoch check,
	// the write, and the compact/expanded transitions all touch one line
	// table entry, so the general per-page walk is skipped entirely.
	if line := off >> LineShift; (off+n-1)>>LineShift == line {
		if p.expanded&(1<<uint(line)) == 0 {
			if p.lineEpoch[line] != uint32(old) {
				return false
			}
			if old == new {
				return true // value unchanged: the line stays compact
			}
			if n == LineBytes { // same-line ⇒ off is line-aligned
				p.lineEpoch[line] = uint32(new)
				return true
			}
			// After the copy-out the bytes outside the range still hold
			// old ≠ new, so no recompaction attempt is needed.
			r.expandLine(p, uint(line))
			writeEpochs(p.bytes, off, n, uint32(new))
			return true
		}
		ep := p.bytes.epochs()
		if ep[off] != uint32(old) {
			return false
		}
		writeEpochs(p.bytes, off, n, uint32(new))
		r.maybeRecompact(p, uint(line), uint32(new))
		return true
	}
	if epochAt(p, off) != uint32(old) {
		return false
	}
	run := PageBytes - off
	if run > n {
		run = n
	}
	r.storeInPage(p, off, run, uint32(new))
	if run < n {
		r.StoreRange(addr+uint64(run), n-run, new)
	}
	return true
}

// StoreRange unconditionally sets the n epochs starting at addr, one page
// resolution per covered page. Lines fully covered by the range become
// compact (this is how rollover-era sweeps and fresh allocations keep the
// region in its cheap representation); partially covered lines expand if
// they must diverge and re-compact opportunistically when the store leaves
// them uniform.
func (r *Region) StoreRange(addr uint64, n int, e vclock.Epoch) {
	for n > 0 {
		off := int(addr & pageMask)
		p := r.ensure(addr >> PageShift)
		run := PageBytes - off
		if run > n {
			run = n
		}
		if r.concurrent {
			ep := p.bytes.epochs()
			for i := 0; i < run; i++ {
				atomic.StoreUint32(&ep[off+i], uint32(e))
			}
		} else {
			r.storeInPage(p, off, run, uint32(e))
		}
		addr += uint64(run)
		n -= run
	}
}

// storeInPage writes epoch e over [off, off+n) of page p, maintaining the
// compact/expanded invariant line by line (unsynchronized mode).
func (r *Region) storeInPage(p *page, off, n int, e uint32) {
	i, end := off, off+n
	for i < end {
		line := i >> LineShift
		lineStart := line * LineBytes
		lineEnd := lineStart + LineBytes
		if i == lineStart && end >= lineEnd {
			// Full line covered: collapse to one compact epoch.
			if p.expanded&(1<<line) != 0 {
				r.collapseLine(p, uint(line))
			}
			p.lineEpoch[line] = e
			i = lineEnd
			continue
		}
		seg := lineEnd
		if seg > end {
			seg = end
		}
		if p.expanded&(1<<line) == 0 {
			if p.lineEpoch[line] == e {
				i = seg // partial store of the line's own epoch: no-op
				continue
			}
			r.expandLine(p, uint(line))
		}
		writeEpochs(p.bytes, i, seg-i, e)
		r.maybeRecompact(p, uint(line), e)
		i = seg
	}
}

// writeEpochs writes epoch e over [off, off+n) of the expanded store, two
// packed epochs per word store on the aligned interior.
func writeEpochs(pe *pageEpochs, off, n int, e uint32) {
	ep := pe.epochs()
	i, end := off, off+n
	if i&1 == 1 { // unaligned head: one epoch
		ep[i] = e
		i++
	}
	pat := pattern(e)
	for ; i+2 <= end; i += 2 {
		pe.words[i>>1] = pat
	}
	if i < end {
		ep[i] = e
	}
}

// expandLine converts line l of page p from compact to per-byte form by
// copying the compact epoch out to every byte slot — Fig. 5's expansion.
// The per-byte store is allocated on the page's first expansion only;
// pooled pages arrive with it already attached.
func (r *Region) expandLine(p *page, l uint) {
	if p.bytes == nil {
		p.bytes = new(pageEpochs)
	}
	pat := pattern(p.lineEpoch[l])
	w := p.bytes.words[l*wordsPerLine : (l+1)*wordsPerLine]
	for i := range w {
		w[i] = pat
	}
	p.expanded |= 1 << l
	r.expandedLines++
	gExpandedLines.Add(1)
	gExpansions.Add(1)
}

// collapseLine clears line l's expanded bit; the caller sets lineEpoch.
// The stale per-byte slots are left in place — they are rewritten by the
// copy-out on the next expansion.
func (r *Region) collapseLine(p *page, l uint) {
	p.expanded &^= 1 << l
	r.expandedLines--
	gExpandedLines.Add(-1)
	gCollapses.Add(1)
}

// maybeRecompact collapses an expanded line back to compact form when a
// partial store has just left every byte equal to e: one early-exit pass
// over the packed words, so the check costs at most 32 compares and
// usually exits on the first.
func (r *Region) maybeRecompact(p *page, l uint, e uint32) {
	pat := pattern(e)
	w := p.bytes.words[l*wordsPerLine : (l+1)*wordsPerLine]
	// Boundary guard: a uniform line matches at both ends, so a partial
	// store that left either boundary word divergent exits in ≤2 compares
	// — the overwhelmingly common outcome on a genuinely mixed line.
	if w[0] != pat || w[wordsPerLine-1] != pat {
		return
	}
	for _, x := range w[1 : wordsPerLine-1] {
		if x != pat {
			return
		}
	}
	r.collapseLine(p, l)
	p.lineEpoch[l] = e
}

// Reset discards every epoch, returning the region to the all-zero state.
// It models the remap-to-zero-page rollover reset of §4.5: cost is
// proportional to the number of mapped pages, not to the data size, and —
// like the remap — the pages themselves are recycled through the free
// list, so the rollover epoch starts compact and allocation-free.
func (r *Region) Reset() {
	r.release()
	r.resets.Add(1)
}

// Release returns the region's shadow pages to the process-wide pool
// without counting a rollover reset. Call it exactly once when a run is
// finished with its detector (the facade, harness, and service job paths
// all do); using the region afterwards is safe — it simply re-materializes
// pages — but releasing a region whose machine is still running is not.
func (r *Region) Release() { r.release() }

func (r *Region) release() {
	if r.concurrent {
		r.mu.Lock()
		n := len(r.pages)
		r.pages = make(map[uint64]*page)
		r.mu.Unlock()
		gMappedPages.Add(-int64(n))
		gExpandedLines.Add(-int64(n * LinesPerPage))
		return
	}
	r.lastPage = nil
	gMappedPages.Add(-int64(len(r.pages)))
	gExpandedLines.Add(-int64(r.expandedLines))
	r.expandedLines = 0
	for _, p := range r.pages {
		putPage(p)
	}
	clear(r.pages) // keeps the map's buckets for the next epoch era
}

// Resets returns the number of Reset calls performed.
func (r *Region) Resets() uint64 { return r.resets.Load() }

// MappedPages returns the number of shadow pages currently backed by
// storage. The paper's memory-footprint claim (§4.6) is that this grows
// with accessed shared data, not with the address-space size.
func (r *Region) MappedPages() int {
	if r.concurrent {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	return len(r.pages)
}

// Footprint describes a region's current metadata footprint in the
// adaptive representation.
type Footprint struct {
	MappedPages   int // shadow pages backed by storage
	LinesCompact  int // lines represented by one epoch
	LinesExpanded int // lines in per-byte form
	MetadataBytes int // logical metadata bytes, see MetadataBytes
}

// Footprint returns the region's current footprint. LinesCompact counts
// every line of every mapped page that is not expanded, matching the
// paper's view that a mapped-but-uniform line costs one entry.
func (r *Region) Footprint() Footprint {
	if r.concurrent {
		r.mu.RLock()
		pages := len(r.pages)
		r.mu.RUnlock()
		exp := pages * LinesPerPage
		return Footprint{
			MappedPages:   pages,
			LinesExpanded: exp,
			MetadataBytes: metadataBytes(pages, exp),
		}
	}
	pages := len(r.pages)
	return Footprint{
		MappedPages:   pages,
		LinesCompact:  pages*LinesPerPage - r.expandedLines,
		LinesExpanded: r.expandedLines,
		MetadataBytes: metadataBytes(pages, r.expandedLines),
	}
}

// metadataBytes is the logical metadata footprint of the adaptive
// representation: one 4-byte compact epoch per line of every mapped page,
// plus 4 bytes per byte for each expanded line. It is a deterministic
// function of the region's state — pool recycling and the lazily attached
// per-byte arrays never change it — so experiment outputs that report it
// are reproducible. (Physical bytes retained by the pool are reported
// separately via Global.)
func metadataBytes(pages, expandedLines int) int {
	return pages*LinesPerPage*4 + expandedLines*LineBytes*4
}

// MetadataBytes returns the current logical metadata footprint in bytes.
func (r *Region) MetadataBytes() int { return r.Footprint().MetadataBytes }

// lookup resolves a page index to its page, or nil when unmapped. In
// unsynchronized mode a hit refreshes the last-page cache.
func (r *Region) lookup(idx uint64) *page {
	if r.concurrent {
		r.mu.RLock()
		p := r.pages[idx]
		r.mu.RUnlock()
		return p
	}
	if p := r.lastPage; p != nil && r.lastIdx == idx {
		return p
	}
	p := r.pages[idx]
	if p != nil {
		r.lastIdx, r.lastPage = idx, p
	}
	return p
}

// ensure resolves a page index, materializing the page on first touch.
// Unsynchronized pages come from the free list and start all-compact with
// zero epochs; concurrent pages are always fully expanded (atomic
// operations need stable per-byte cells) and bypass the pool.
func (r *Region) ensure(idx uint64) *page {
	if !r.concurrent {
		if p := r.lastPage; p != nil && r.lastIdx == idx {
			return p
		}
		p := r.pages[idx]
		if p == nil {
			p = getPage()
			r.pages[idx] = p
			gMappedPages.Add(1)
		}
		r.lastIdx, r.lastPage = idx, p
		return p
	}
	r.mu.RLock()
	p := r.pages[idx]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.pages[idx]; p != nil {
		return p
	}
	p = &page{bytes: new(pageEpochs), expanded: ^uint64(0)}
	r.pages[idx] = p
	gMappedPages.Add(1)
	gExpandedLines.Add(LinesPerPage)
	return p
}
