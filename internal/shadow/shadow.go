// Package shadow implements CLEAN's software epoch region (§4.2): one
// 32-bit epoch per byte of program data, at a fixed offset from the data
// address, so EPOCH_ADDRESS is a shift-and-add.
//
// The paper reserves a large fixed region of virtual address space and
// relies on demand paging so that only epochs for touched data consume
// physical memory; the deterministic rollover reset (§4.5) then remaps all
// epoch pages to the kernel zero page instead of writing zeroes. This
// package reproduces both properties with a lazily populated page table:
// untouched pages cost nothing, and Reset drops every page in O(pages).
//
// The region is structured as a page-handle fast lane: every operation
// resolves its page exactly once and then works on the page's epoch array
// directly, multi-byte operations (LoadAllEqual, CompareAndSwapRange,
// StoreRange) run as tight loops over that array, and a last-page cache —
// the same trick ThreadSanitizer's direct-mapped shadow plays with its
// application/shadow offset — makes the common same-page access skip the
// page table entirely.
//
// Two synchronization modes exist:
//
//   - New returns an unsynchronized region. The cooperative machine
//     dispatches one thread at a time, so every detector check is already
//     serialized and the region can use plain loads and stores — this is
//     the §4.2 fast lane, and the mode every detector uses.
//   - NewConcurrent returns a region whose single-epoch operations are
//     atomic (sync/atomic on the backing words) and whose page table is
//     lock-protected, so the compare-and-swap update of §4.3 keeps its
//     meaning when the region is driven from truly concurrent goroutines,
//     as the stress tests do.
package shadow

import (
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// PageShift is log2(PageBytes); the page index of an address is one shift.
const PageShift = 12

// PageBytes is the number of data bytes covered by one shadow page. Each
// page therefore backs PageBytes epochs (4×PageBytes metadata bytes),
// mirroring the 1:4 data:metadata ratio of §4.2.
const PageBytes = 1 << PageShift

// pageMask extracts the intra-page offset of an address.
const pageMask = PageBytes - 1

// Region is the epoch shadow for a simulated address space. The zero value
// is not ready for use; call New or NewConcurrent.
type Region struct {
	// concurrent selects atomic epoch operations and a locked page table;
	// unset, the region relies on the machine's serialization of checks.
	concurrent bool

	// lastIdx/lastPage cache the most recently resolved page (unsynchronized
	// mode only): the common same-page access skips the map entirely.
	lastIdx  uint64
	lastPage *page

	pages map[uint64]*page
	mu    sync.RWMutex // guards pages in concurrent mode

	// resets counts completed Reset calls, reported by the Table 1
	// experiment as the number of rollover resets.
	resets atomic.Uint64
}

type page struct {
	epochs [PageBytes]uint32
}

// New returns an empty unsynchronized shadow region: the fast lane for
// detectors driven from the cooperative machine, which serializes all
// checks. Use NewConcurrent when the region is shared between goroutines.
func New() *Region {
	return &Region{pages: make(map[uint64]*page)}
}

// NewConcurrent returns an empty shadow region safe for concurrent use:
// single-epoch operations are atomic and the page table is lock-protected.
func NewConcurrent() *Region {
	return &Region{concurrent: true, pages: make(map[uint64]*page)}
}

// Load returns the epoch of the data byte at addr. Untouched bytes read as
// the zero epoch, which happens-before everything.
func (r *Region) Load(addr uint64) vclock.Epoch {
	if !r.concurrent {
		if p := r.lastPage; p != nil && r.lastIdx == addr>>PageShift {
			return vclock.Epoch(p.epochs[addr&pageMask])
		}
	}
	p := r.lookup(addr >> PageShift)
	if p == nil {
		return 0
	}
	if r.concurrent {
		return vclock.Epoch(atomic.LoadUint32(&p.epochs[addr&pageMask]))
	}
	return vclock.Epoch(p.epochs[addr&pageMask])
}

// Store unconditionally sets the epoch of the data byte at addr.
func (r *Region) Store(addr uint64, e vclock.Epoch) {
	p := r.ensure(addr >> PageShift)
	if r.concurrent {
		atomic.StoreUint32(&p.epochs[addr&pageMask], uint32(e))
		return
	}
	p.epochs[addr&pageMask] = uint32(e)
}

// CompareAndSwap replaces the epoch at addr with new if it still equals
// old, reporting whether the swap happened. A failed swap on a write check
// is exactly how a concurrent WAW race manifests in software CLEAN (§4.3).
// In unsynchronized mode the machine's serialization of checks supplies
// the atomicity; in concurrent mode it is a hardware CAS.
func (r *Region) CompareAndSwap(addr uint64, old, new vclock.Epoch) bool {
	p := r.ensure(addr >> PageShift)
	if r.concurrent {
		return atomic.CompareAndSwapUint32(&p.epochs[addr&pageMask], uint32(old), uint32(new))
	}
	w := &p.epochs[addr&pageMask]
	if *w != uint32(old) {
		return false
	}
	*w = uint32(new)
	return true
}

// LoadAllEqual loads the epochs of the n data bytes starting at addr and
// reports whether they all hold the same value, returning that value when
// they do. This is the software analogue of the vector load + vector
// compare of §4.4: in the common case a multi-byte access is validated by
// inspecting a single epoch.
//
// loads is the number of epoch words actually inspected — n when the range
// is uniform (or entirely unmapped, which reads as n zero epochs), fewer
// when a mismatch stops the scan early. Detectors use it to keep their
// epoch-load counters honest.
func (r *Region) LoadAllEqual(addr uint64, n int) (e vclock.Epoch, allEqual bool, loads int) {
	if n <= 0 {
		return 0, true, 0
	}
	off := addr & pageMask
	if !r.concurrent && int(off)+n <= PageBytes {
		// Fast lane: the whole access lies in one page — resolve it once
		// and compare over the array.
		p := r.lookup(addr >> PageShift)
		if p == nil {
			return 0, true, n
		}
		ep := p.epochs[off : int(off)+n]
		e0 := ep[0]
		for i := 1; i < len(ep); i++ {
			if ep[i] != e0 {
				return vclock.Epoch(e0), false, i + 1
			}
		}
		return vclock.Epoch(e0), true, n
	}
	// Page-crossing or concurrent access: per-byte loads (the last-page
	// cache still makes the unsynchronized crossing case two resolutions).
	e = r.Load(addr)
	for i := 1; i < n; i++ {
		if r.Load(addr+uint64(i)) != e {
			return e, false, i + 1
		}
	}
	return e, true, n
}

// CompareAndSwapRange performs the wide-CAS update of §4.4: the n epochs
// starting at addr are swapped from old to new as one operation. The
// hardware analogue is a 128-bit CAS covering four epochs; in software the
// leading epoch is checked and the rest stored, which is atomic here
// because the machine serializes race checks (callers needing true
// concurrent atomicity per epoch use CompareAndSwap). It reports false — a
// WAW race, §4.3 — when the leading epoch no longer holds old.
func (r *Region) CompareAndSwapRange(addr uint64, n int, old, new vclock.Epoch) bool {
	if n <= 0 {
		return true
	}
	if r.concurrent {
		if !r.CompareAndSwap(addr, old, new) {
			return false
		}
		r.StoreRange(addr+1, n-1, new)
		return true
	}
	off := addr & pageMask
	p := r.ensure(addr >> PageShift)
	if p.epochs[off] != uint32(old) {
		return false
	}
	run := n
	if int(off)+run > PageBytes {
		run = PageBytes - int(off)
	}
	ep := p.epochs[off : int(off)+run]
	for i := range ep {
		ep[i] = uint32(new)
	}
	if run < n {
		r.StoreRange(addr+uint64(run), n-run, new)
	}
	return true
}

// StoreRange unconditionally sets the n epochs starting at addr, one page
// resolution per covered page.
func (r *Region) StoreRange(addr uint64, n int, e vclock.Epoch) {
	for n > 0 {
		off := addr & pageMask
		p := r.ensure(addr >> PageShift)
		run := PageBytes - int(off)
		if run > n {
			run = n
		}
		if r.concurrent {
			for i := 0; i < run; i++ {
				atomic.StoreUint32(&p.epochs[int(off)+i], uint32(e))
			}
		} else {
			ep := p.epochs[off : int(off)+run]
			for i := range ep {
				ep[i] = uint32(e)
			}
		}
		addr += uint64(run)
		n -= run
	}
}

// Reset discards every epoch, returning the region to the all-zero state.
// It models the remap-to-zero-page rollover reset of §4.5: cost is
// proportional to the number of mapped pages, not to the data size.
func (r *Region) Reset() {
	if r.concurrent {
		r.mu.Lock()
		r.pages = make(map[uint64]*page)
		r.mu.Unlock()
	} else {
		r.pages = make(map[uint64]*page)
		r.lastPage = nil
	}
	r.resets.Add(1)
}

// Resets returns the number of Reset calls performed.
func (r *Region) Resets() uint64 { return r.resets.Load() }

// MappedPages returns the number of shadow pages currently backed by
// storage. The paper's memory-footprint claim (§4.6) is that this grows
// with accessed shared data, not with the address-space size.
func (r *Region) MappedPages() int {
	if r.concurrent {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	return len(r.pages)
}

// MetadataBytes returns the current metadata footprint in bytes
// (4 bytes of epoch per covered data byte).
func (r *Region) MetadataBytes() int { return r.MappedPages() * PageBytes * 4 }

// lookup resolves a page index to its page, or nil when unmapped. In
// unsynchronized mode a hit refreshes the last-page cache.
func (r *Region) lookup(idx uint64) *page {
	if r.concurrent {
		r.mu.RLock()
		p := r.pages[idx]
		r.mu.RUnlock()
		return p
	}
	if p := r.lastPage; p != nil && r.lastIdx == idx {
		return p
	}
	p := r.pages[idx]
	if p != nil {
		r.lastIdx, r.lastPage = idx, p
	}
	return p
}

// ensure resolves a page index, materializing the page on first touch.
func (r *Region) ensure(idx uint64) *page {
	if !r.concurrent {
		if p := r.lastPage; p != nil && r.lastIdx == idx {
			return p
		}
		p := r.pages[idx]
		if p == nil {
			p = new(page)
			r.pages[idx] = p
		}
		r.lastIdx, r.lastPage = idx, p
		return p
	}
	r.mu.RLock()
	p := r.pages[idx]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.pages[idx]; p != nil {
		return p
	}
	p = new(page)
	r.pages[idx] = p
	return p
}
