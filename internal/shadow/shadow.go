// Package shadow implements CLEAN's software epoch region (§4.2): one
// 32-bit epoch per byte of program data, at a fixed offset from the data
// address, so EPOCH_ADDRESS is a shift-and-add.
//
// The paper reserves a large fixed region of virtual address space and
// relies on demand paging so that only epochs for touched data consume
// physical memory; the deterministic rollover reset (§4.5) then remaps all
// epoch pages to the kernel zero page instead of writing zeroes. This
// package reproduces both properties with a lazily populated page table:
// untouched pages cost nothing, and Reset drops every page in O(pages).
//
// All single-epoch operations are atomic (sync/atomic on the backing
// words) so the compare-and-swap update of §4.3 keeps its meaning when the
// region is driven from truly concurrent goroutines, as the stress tests
// do.
package shadow

import (
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
)

// PageBytes is the number of data bytes covered by one shadow page. Each
// page therefore backs PageBytes epochs (4×PageBytes metadata bytes),
// mirroring the 1:4 data:metadata ratio of §4.2.
const PageBytes = 4096

// Region is the epoch shadow for a simulated address space. The zero value
// is not ready for use; call New.
type Region struct {
	mu    sync.RWMutex
	pages map[uint64]*page
	// resets counts completed Reset calls, reported by the Table 1
	// experiment as the number of rollover resets.
	resets atomic.Uint64
}

type page struct {
	epochs [PageBytes]uint32
}

// New returns an empty shadow region.
func New() *Region {
	return &Region{pages: make(map[uint64]*page)}
}

// Load returns the epoch of the data byte at addr. Untouched bytes read as
// the zero epoch, which happens-before everything.
func (r *Region) Load(addr uint64) vclock.Epoch {
	p := r.lookup(addr / PageBytes)
	if p == nil {
		return 0
	}
	return vclock.Epoch(atomic.LoadUint32(&p.epochs[addr%PageBytes]))
}

// Store unconditionally sets the epoch of the data byte at addr.
func (r *Region) Store(addr uint64, e vclock.Epoch) {
	p := r.ensure(addr / PageBytes)
	atomic.StoreUint32(&p.epochs[addr%PageBytes], uint32(e))
}

// CompareAndSwap atomically replaces the epoch at addr with new if it still
// equals old, reporting whether the swap happened. A failed swap on a write
// check is exactly how a concurrent WAW race manifests in software CLEAN
// (§4.3).
func (r *Region) CompareAndSwap(addr uint64, old, new vclock.Epoch) bool {
	p := r.ensure(addr / PageBytes)
	return atomic.CompareAndSwapUint32(&p.epochs[addr%PageBytes], uint32(old), uint32(new))
}

// LoadAllEqual loads the epochs of the n data bytes starting at addr and
// reports whether they all hold the same value, returning that value when
// they do. This is the software analogue of the vector load + vector
// compare of §4.4: in the common case a multi-byte access is validated by
// inspecting a single epoch.
func (r *Region) LoadAllEqual(addr uint64, n int) (e vclock.Epoch, allEqual bool) {
	if n <= 0 {
		return 0, true
	}
	e = r.Load(addr)
	for i := 1; i < n; i++ {
		if r.Load(addr+uint64(i)) != e {
			return e, false
		}
	}
	return e, true
}

// CompareAndSwapRange performs the wide-CAS update of §4.4: the n epochs
// starting at addr are swapped from old to new as one operation. The
// hardware analogue is a 128-bit CAS covering four epochs; in software the
// leading epoch is CASed and the rest stored, which is atomic here because
// the machine serializes race checks (callers needing true concurrent
// atomicity per epoch use CompareAndSwap). It reports false — a WAW race,
// §4.3 — when the leading epoch no longer holds old.
func (r *Region) CompareAndSwapRange(addr uint64, n int, old, new vclock.Epoch) bool {
	if n <= 0 {
		return true
	}
	if !r.CompareAndSwap(addr, old, new) {
		return false
	}
	r.StoreRange(addr+1, n-1, new)
	return true
}

// StoreRange unconditionally sets the n epochs starting at addr.
func (r *Region) StoreRange(addr uint64, n int, e vclock.Epoch) {
	for i := 0; i < n; i++ {
		r.Store(addr+uint64(i), e)
	}
}

// Reset discards every epoch, returning the region to the all-zero state.
// It models the remap-to-zero-page rollover reset of §4.5: cost is
// proportional to the number of mapped pages, not to the data size.
func (r *Region) Reset() {
	r.mu.Lock()
	r.pages = make(map[uint64]*page)
	r.mu.Unlock()
	r.resets.Add(1)
}

// Resets returns the number of Reset calls performed.
func (r *Region) Resets() uint64 { return r.resets.Load() }

// MappedPages returns the number of shadow pages currently backed by
// storage. The paper's memory-footprint claim (§4.6) is that this grows
// with accessed shared data, not with the address-space size.
func (r *Region) MappedPages() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.pages)
}

// MetadataBytes returns the current metadata footprint in bytes
// (4 bytes of epoch per covered data byte).
func (r *Region) MetadataBytes() int { return r.MappedPages() * PageBytes * 4 }

func (r *Region) lookup(idx uint64) *page {
	r.mu.RLock()
	p := r.pages[idx]
	r.mu.RUnlock()
	return p
}

func (r *Region) ensure(idx uint64) *page {
	if p := r.lookup(idx); p != nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.pages[idx]; p != nil {
		return p
	}
	p := new(page)
	r.pages[idx] = p
	return p
}
