package shadow

// Differential testing of the adaptive region against a naive per-byte
// reference map: every operation sequence must produce identical epochs
// AND identical per-byte-equivalent `loads` counts, in both
// synchronization modes. The loads half is the honesty guarantee
// core.Stats.EpochLoads (and the golden run reports pinned on it) build
// on: the compact/expanded state a line happens to be in must never show
// through the API.

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/vclock"
)

// diffSpan is the address window the differential drivers operate in:
// three pages, so ranges cross page boundaries at PageBytes and
// 2*PageBytes and line boundaries throughout.
const diffSpan = 3 * PageBytes

// refRegion is the specification: one map entry per byte, no pages, no
// lines, no compaction. Unset bytes read as epoch zero, exactly like
// unmapped shadow.
type refRegion struct{ m map[uint64]uint32 }

func newRef() *refRegion { return &refRegion{m: make(map[uint64]uint32)} }

func (r *refRegion) load(a uint64) uint32     { return r.m[a] }
func (r *refRegion) store(a uint64, e uint32) { r.m[a] = e }

func (r *refRegion) storeRange(a uint64, n int, e uint32) {
	for i := 0; i < n; i++ {
		r.m[a+uint64(i)] = e
	}
}

func (r *refRegion) cas(a uint64, old, new uint32) bool {
	if r.m[a] != old {
		return false
	}
	r.m[a] = new
	return true
}

// casRange mirrors Region.CompareAndSwapRange: only the leading epoch is
// checked, the rest stored.
func (r *refRegion) casRange(a uint64, n int, old, new uint32) bool {
	if n <= 0 {
		return true
	}
	if r.m[a] != old {
		return false
	}
	r.storeRange(a, n, new)
	return true
}

func (r *refRegion) loadAllEqual(a uint64, n int) (uint32, bool, int) {
	if n <= 0 {
		return 0, true, 0
	}
	e0 := r.m[a]
	for i := 1; i < n; i++ {
		if r.m[a+uint64(i)] != e0 {
			return e0, false, i + 1
		}
	}
	return e0, true, n
}

func (r *refRegion) reset() { clear(r.m) }

// diffState drives one adaptive region and the reference in lockstep.
type diffState struct {
	t    *testing.T
	mode string
	r    *Region
	ref  *refRegion
}

func (s *diffState) compareAt(a uint64, n int) {
	s.t.Helper()
	ge, geq, gl := s.r.LoadAllEqual(a, n)
	we, weq, wl := s.ref.loadAllEqual(a, n)
	if uint32(ge) != we || geq != weq || gl != wl {
		s.t.Fatalf("%s: LoadAllEqual(%d,%d) = (%v,%v,%d), reference (%v,%v,%d)",
			s.mode, a, n, ge, geq, gl, we, weq, wl)
	}
	if got := uint32(s.r.Load(a)); got != s.ref.load(a) {
		s.t.Fatalf("%s: Load(%d) = %v, reference %v", s.mode, a, got, s.ref.load(a))
	}
}

// step decodes one operation from six bytes and applies it to both sides.
func (s *diffState) step(op [6]byte) {
	s.t.Helper()
	addr := uint64(binary.LittleEndian.Uint16(op[1:3])) % diffSpan
	n := int(op[3]%72) + 1 // 1..72: crosses line and page boundaries
	if addr+uint64(n) > diffSpan {
		n = int(diffSpan - addr)
	}
	// A small epoch alphabet (plus zero) maximizes collisions, which is
	// where compaction/expansion transitions live.
	e := uint32(0)
	if v := op[4] % 6; v > 0 {
		e = uint32(vclock.DefaultLayout.Pack(int(v), uint32(op[5]%4)+1))
	}
	switch op[0] % 8 {
	case 0:
		s.r.Store(addr, vclock.Epoch(e))
		s.ref.store(addr, e)
	case 1:
		s.r.StoreRange(addr, n, vclock.Epoch(e))
		s.ref.storeRange(addr, n, e)
	case 2: // CAS with the true current value: must succeed identically
		old := s.ref.load(addr)
		if s.r.CompareAndSwap(addr, vclock.Epoch(old), vclock.Epoch(e)) != s.ref.cas(addr, old, e) {
			s.t.Fatalf("%s: CAS(%d) outcome diverged", s.mode, addr)
		}
	case 3: // CAS with a likely-stale value: failure paths must agree too
		if s.r.CompareAndSwap(addr, vclock.Epoch(e), vclock.Epoch(e^1)) != s.ref.cas(addr, e, e^1) {
			s.t.Fatalf("%s: stale CAS(%d) outcome diverged", s.mode, addr)
		}
	case 4:
		old := s.ref.load(addr)
		if s.r.CompareAndSwapRange(addr, n, vclock.Epoch(old), vclock.Epoch(e)) != s.ref.casRange(addr, n, old, e) {
			s.t.Fatalf("%s: CASRange(%d,%d) outcome diverged", s.mode, addr, n)
		}
	case 5:
		if s.r.CompareAndSwapRange(addr, n, vclock.Epoch(e), vclock.Epoch(e^1)) != s.ref.casRange(addr, n, e, e^1) {
			s.t.Fatalf("%s: stale CASRange(%d,%d) outcome diverged", s.mode, addr, n)
		}
	case 6: // rare full reset
		if op[1]%16 == 0 {
			s.r.Reset()
			s.ref.reset()
		}
	case 7: // pure read probe, also exercised below
	}
	s.compareAt(addr, n)
	// A fixed page-crossing probe keeps the boundary honest every step.
	s.compareAt(PageBytes-8, 16)
}

// sweep compares every byte of the window plus line-aligned range checks.
func (s *diffState) sweep() {
	s.t.Helper()
	for a := uint64(0); a < diffSpan; a++ {
		if got := uint32(s.r.Load(a)); got != s.ref.load(a) {
			s.t.Fatalf("%s: final sweep: Load(%d) = %v, reference %v", s.mode, a, got, s.ref.load(a))
		}
	}
	for a := uint64(0); a+64 <= diffSpan; a += 64 {
		s.compareAt(a, 64)
	}
}

func runDiff(t *testing.T, mode string, mk func() *Region, ops [][6]byte) {
	s := &diffState{t: t, mode: mode, r: mk(), ref: newRef()}
	for _, op := range ops {
		s.step(op)
	}
	s.sweep()
	s.r.Release()
}

// TestDifferentialRandom drives tens of thousands of seeded random ops
// through both region modes against the reference.
func TestDifferentialRandom(t *testing.T) {
	for mode, mk := range regions() {
		rng := rand.New(rand.NewSource(1))
		nops := 20000
		if testing.Short() {
			nops = 2000
		}
		ops := make([][6]byte, nops)
		for i := range ops {
			var op [6]byte
			binary.LittleEndian.PutUint32(op[0:4], rng.Uint32())
			binary.LittleEndian.PutUint16(op[4:6], uint16(rng.Uint32()))
			ops[i] = op
		}
		runDiff(t, mode, mk, ops)
	}
}

// FuzzDifferential lets the fuzzer hunt for op sequences where the
// adaptive representation diverges from the per-byte reference. `go test`
// runs the seed corpus; `go test -fuzz=FuzzDifferential ./internal/shadow`
// explores.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 7, 1, 1})
	// Expansion, recompaction, and a page-crossing range around PageBytes.
	f.Add([]byte{
		1, 0xf8, 0x0f, 16, 2, 1, // StoreRange crossing the page boundary
		0, 0xfa, 0x0f, 0, 3, 1, // divergent byte inside it
		1, 0xc0, 0x0f, 63, 2, 1, // full-line store → collapse
		6, 0, 0, 0, 0, 0, // reset
		2, 0xfa, 0x0f, 7, 2, 1, // CAS after reset
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops [][6]byte
		for len(data) >= 6 && len(ops) < 512 {
			var op [6]byte
			copy(op[:], data[:6])
			ops = append(ops, op)
			data = data[6:]
		}
		for mode, mk := range regions() {
			runDiff(t, mode, mk, ops)
		}
	})
}
