package shadow

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

var layout = vclock.DefaultLayout

func TestLoadUntouchedIsZero(t *testing.T) {
	r := New()
	if e := r.Load(12345); e != 0 {
		t.Fatalf("untouched epoch = %v, want 0", e)
	}
	if r.MappedPages() != 0 {
		t.Fatalf("Load must not materialize pages, got %d", r.MappedPages())
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	r := New()
	e := layout.Pack(3, 77)
	r.Store(999, e)
	if got := r.Load(999); got != e {
		t.Fatalf("Load = %v, want %v", got, e)
	}
	if got := r.Load(998); got != 0 {
		t.Fatalf("neighbour epoch = %v, want 0", got)
	}
}

func TestStoreAcrossPageBoundary(t *testing.T) {
	r := New()
	base := uint64(PageBytes - 2)
	e := layout.Pack(1, 1)
	r.StoreRange(base, 4, e)
	for i := uint64(0); i < 4; i++ {
		if got := r.Load(base + i); got != e {
			t.Fatalf("epoch at +%d = %v, want %v", i, got, e)
		}
	}
	if r.MappedPages() != 2 {
		t.Fatalf("MappedPages = %d, want 2", r.MappedPages())
	}
}

func TestCompareAndSwap(t *testing.T) {
	r := New()
	a := layout.Pack(1, 10)
	b := layout.Pack(2, 20)
	if !r.CompareAndSwap(5, 0, a) {
		t.Fatal("CAS from zero failed")
	}
	if r.CompareAndSwap(5, 0, b) {
		t.Fatal("CAS with stale old value succeeded")
	}
	if !r.CompareAndSwap(5, a, b) {
		t.Fatal("CAS with correct old value failed")
	}
	if got := r.Load(5); got != b {
		t.Fatalf("Load = %v, want %v", got, b)
	}
}

func TestLoadAllEqual(t *testing.T) {
	r := New()
	e := layout.Pack(4, 9)
	r.StoreRange(100, 8, e)
	got, eq := r.LoadAllEqual(100, 8)
	if !eq || got != e {
		t.Fatalf("LoadAllEqual = %v,%v; want %v,true", got, eq, e)
	}
	r.Store(103, layout.Pack(5, 9))
	if _, eq := r.LoadAllEqual(100, 8); eq {
		t.Fatal("LoadAllEqual reported equal after a divergent byte")
	}
	if _, eq := r.LoadAllEqual(50, 0); !eq {
		t.Fatal("empty range must be trivially equal")
	}
}

func TestCompareAndSwapRangeStopsOnConflict(t *testing.T) {
	r := New()
	old := layout.Pack(1, 1)
	r.StoreRange(0, 4, old)
	r.Store(0, layout.Pack(2, 2)) // conflicting update on the leading epoch
	if r.CompareAndSwapRange(0, 4, old, layout.Pack(1, 3)) {
		t.Fatal("range CAS should fail on the conflicting leading epoch")
	}
	// Trailing epochs must not have been updated.
	if got := r.Load(3); got != old {
		t.Fatalf("epoch past conflict was updated: %v", got)
	}
}

func TestCompareAndSwapRangeSucceeds(t *testing.T) {
	r := New()
	old := layout.Pack(1, 1)
	nw := layout.Pack(1, 2)
	r.StoreRange(8, 8, old)
	if !r.CompareAndSwapRange(8, 8, old, nw) {
		t.Fatal("range CAS failed on matching epochs")
	}
	for i := uint64(8); i < 16; i++ {
		if got := r.Load(i); got != nw {
			t.Fatalf("epoch %d = %v, want %v", i, got, nw)
		}
	}
	if r.CompareAndSwapRange(0, 0, old, nw) != true {
		t.Fatal("empty range CAS must trivially succeed")
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Store(1, layout.Pack(1, 1))
	r.Store(PageBytes*3, layout.Pack(2, 2))
	if r.MappedPages() != 2 {
		t.Fatalf("MappedPages = %d, want 2", r.MappedPages())
	}
	r.Reset()
	if r.Load(1) != 0 || r.Load(PageBytes*3) != 0 {
		t.Fatal("epochs survived Reset")
	}
	if r.MappedPages() != 0 {
		t.Fatalf("pages survived Reset: %d", r.MappedPages())
	}
	if r.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", r.Resets())
	}
}

func TestMetadataBytes(t *testing.T) {
	r := New()
	r.Store(0, 1)
	if got, want := r.MetadataBytes(), PageBytes*4; got != want {
		t.Fatalf("MetadataBytes = %d, want %d", got, want)
	}
}

// Property: a store is observed by a subsequent load at the same address
// and at no other address.
func TestStoreIsolationProperty(t *testing.T) {
	f := func(addr uint32, tid uint8, clock uint32, other uint32) bool {
		r := New()
		e := layout.Pack(int(tid), clock&layout.MaxClock())
		r.Store(uint64(addr), e)
		if r.Load(uint64(addr)) != e {
			return false
		}
		if other != addr && r.Load(uint64(other)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Concurrent CAS from many goroutines: exactly one writer per round wins,
// and the final value is one of the proposed epochs. This exercises the
// §4.3 atomicity argument with real concurrency.
func TestConcurrentCASSingleWinner(t *testing.T) {
	r := New()
	const writers = 16
	const rounds = 200
	for round := 0; round < rounds; round++ {
		old := r.Load(42)
		var wg sync.WaitGroup
		wins := make([]bool, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wins[w] = r.CompareAndSwap(42, old, layout.Pack(w%255, uint32(round+1)))
			}(w)
		}
		wg.Wait()
		won := 0
		for _, ok := range wins {
			if ok {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, won)
		}
	}
}

func BenchmarkLoad(b *testing.B) {
	r := New()
	r.Store(100, layout.Pack(1, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Load(100)
	}
}

func BenchmarkLoadAllEqual8(b *testing.B) {
	r := New()
	r.StoreRange(100, 8, layout.Pack(1, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = r.LoadAllEqual(100, 8)
	}
}

func BenchmarkCAS(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := layout.Pack(1, uint32(i)&layout.MaxClock())
		r.CompareAndSwap(100, r.Load(100), e)
	}
}
