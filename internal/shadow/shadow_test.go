package shadow

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

var layout = vclock.DefaultLayout

// regions returns both synchronization modes, so every semantic test runs
// against the unsynchronized fast lane and the atomic variant.
func regions() map[string]func() *Region {
	return map[string]func() *Region{
		"unsync":     New,
		"concurrent": NewConcurrent,
	}
}

func TestLoadUntouchedIsZero(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		if e := r.Load(12345); e != 0 {
			t.Fatalf("%s: untouched epoch = %v, want 0", mode, e)
		}
		if r.MappedPages() != 0 {
			t.Fatalf("%s: Load must not materialize pages, got %d", mode, r.MappedPages())
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		e := layout.Pack(3, 77)
		r.Store(999, e)
		if got := r.Load(999); got != e {
			t.Fatalf("%s: Load = %v, want %v", mode, got, e)
		}
		if got := r.Load(998); got != 0 {
			t.Fatalf("%s: neighbour epoch = %v, want 0", mode, got)
		}
	}
}

func TestStoreAcrossPageBoundary(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		base := uint64(PageBytes - 2)
		e := layout.Pack(1, 1)
		r.StoreRange(base, 4, e)
		for i := uint64(0); i < 4; i++ {
			if got := r.Load(base + i); got != e {
				t.Fatalf("%s: epoch at +%d = %v, want %v", mode, i, got, e)
			}
		}
		if r.MappedPages() != 2 {
			t.Fatalf("%s: MappedPages = %d, want 2", mode, r.MappedPages())
		}
	}
}

func TestCompareAndSwap(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		a := layout.Pack(1, 10)
		b := layout.Pack(2, 20)
		if !r.CompareAndSwap(5, 0, a) {
			t.Fatalf("%s: CAS from zero failed", mode)
		}
		if r.CompareAndSwap(5, 0, b) {
			t.Fatalf("%s: CAS with stale old value succeeded", mode)
		}
		if !r.CompareAndSwap(5, a, b) {
			t.Fatalf("%s: CAS with correct old value failed", mode)
		}
		if got := r.Load(5); got != b {
			t.Fatalf("%s: Load = %v, want %v", mode, got, b)
		}
	}
}

func TestLoadAllEqual(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		e := layout.Pack(4, 9)
		r.StoreRange(100, 8, e)
		got, eq, loads := r.LoadAllEqual(100, 8)
		if !eq || got != e || loads != 8 {
			t.Fatalf("%s: LoadAllEqual = %v,%v,%d; want %v,true,8", mode, got, eq, loads, e)
		}
		r.Store(103, layout.Pack(5, 9))
		if _, eq, loads := r.LoadAllEqual(100, 8); eq || loads != 4 {
			t.Fatalf("%s: after divergent byte: eq=%v loads=%d, want false,4", mode, eq, loads)
		}
		if _, eq, loads := r.LoadAllEqual(50, 0); !eq || loads != 0 {
			t.Fatalf("%s: empty range must be trivially equal with 0 loads", mode)
		}
	}
}

func TestLoadAllEqualUnmappedReadsAsZero(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		e, eq, loads := r.LoadAllEqual(1<<30, 8)
		if e != 0 || !eq || loads != 8 {
			t.Fatalf("%s: unmapped LoadAllEqual = %v,%v,%d; want 0,true,8", mode, e, eq, loads)
		}
		if r.MappedPages() != 0 {
			t.Fatalf("%s: LoadAllEqual materialized %d pages", mode, r.MappedPages())
		}
	}
}

func TestLoadAllEqualAcrossPageBoundary(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		base := uint64(PageBytes - 3)
		e := layout.Pack(2, 5)
		r.StoreRange(base, 8, e)
		got, eq, loads := r.LoadAllEqual(base, 8)
		if !eq || got != e || loads != 8 {
			t.Fatalf("%s: crossing LoadAllEqual = %v,%v,%d; want %v,true,8", mode, got, eq, loads, e)
		}
		r.Store(base+5, layout.Pack(3, 5)) // divergence on the second page
		if _, eq, loads := r.LoadAllEqual(base, 8); eq || loads != 6 {
			t.Fatalf("%s: crossing divergence: eq=%v loads=%d, want false,6", mode, eq, loads)
		}
	}
}

func TestCompareAndSwapRangeStopsOnConflict(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		old := layout.Pack(1, 1)
		r.StoreRange(0, 4, old)
		r.Store(0, layout.Pack(2, 2)) // conflicting update on the leading epoch
		if r.CompareAndSwapRange(0, 4, old, layout.Pack(1, 3)) {
			t.Fatalf("%s: range CAS should fail on the conflicting leading epoch", mode)
		}
		// Trailing epochs must not have been updated.
		if got := r.Load(3); got != old {
			t.Fatalf("%s: epoch past conflict was updated: %v", mode, got)
		}
	}
}

func TestCompareAndSwapRangeSucceeds(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		old := layout.Pack(1, 1)
		nw := layout.Pack(1, 2)
		r.StoreRange(8, 8, old)
		if !r.CompareAndSwapRange(8, 8, old, nw) {
			t.Fatalf("%s: range CAS failed on matching epochs", mode)
		}
		for i := uint64(8); i < 16; i++ {
			if got := r.Load(i); got != nw {
				t.Fatalf("%s: epoch %d = %v, want %v", mode, i, got, nw)
			}
		}
		if r.CompareAndSwapRange(0, 0, old, nw) != true {
			t.Fatalf("%s: empty range CAS must trivially succeed", mode)
		}
	}
}

func TestCompareAndSwapRangeAcrossPageBoundary(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		base := uint64(2*PageBytes - 4)
		old := layout.Pack(1, 1)
		nw := layout.Pack(1, 2)
		r.StoreRange(base, 8, old)
		if !r.CompareAndSwapRange(base, 8, old, nw) {
			t.Fatalf("%s: crossing range CAS failed", mode)
		}
		for i := uint64(0); i < 8; i++ {
			if got := r.Load(base + i); got != nw {
				t.Fatalf("%s: epoch +%d = %v, want %v", mode, i, got, nw)
			}
		}
	}
}

func TestReset(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		r.Store(1, layout.Pack(1, 1))
		r.Store(PageBytes*3, layout.Pack(2, 2))
		if r.MappedPages() != 2 {
			t.Fatalf("%s: MappedPages = %d, want 2", mode, r.MappedPages())
		}
		r.Reset()
		if r.Load(1) != 0 || r.Load(PageBytes*3) != 0 {
			t.Fatalf("%s: epochs survived Reset", mode)
		}
		if r.MappedPages() != 0 {
			t.Fatalf("%s: pages survived Reset: %d", mode, r.MappedPages())
		}
		if r.Resets() != 1 {
			t.Fatalf("%s: Resets = %d, want 1", mode, r.Resets())
		}
		// The last-page cache must not resurrect a dropped page.
		if r.CompareAndSwap(1, layout.Pack(1, 1), layout.Pack(1, 9)) {
			t.Fatalf("%s: CAS against a pre-Reset epoch succeeded", mode)
		}
	}
}

func TestMetadataBytes(t *testing.T) {
	r := New()
	r.Store(0, 1)
	// One mapped page (a compact epoch per line) plus one expanded line
	// (the divergent store of epoch 1 over the line's compact zero).
	want := LinesPerPage*4 + LineBytes*4
	if got := r.MetadataBytes(); got != want {
		t.Fatalf("MetadataBytes = %d, want %d", got, want)
	}
	// Collapsing the line back (full-line store) drops the expanded share.
	r.StoreRange(0, LineBytes, 1)
	if got, want := r.MetadataBytes(), LinesPerPage*4; got != want {
		t.Fatalf("after collapse: MetadataBytes = %d, want %d", got, want)
	}
}

// The adaptive representation must expand exactly on divergence and
// collapse exactly on full-line coverage / uniformity (Fig. 5).
func TestAdaptiveExpandCollapse(t *testing.T) {
	r := New()
	e1, e2 := layout.Pack(1, 1), layout.Pack(2, 2)

	// A full-line store keeps the line compact.
	r.StoreRange(0, LineBytes, e1)
	if f := r.Footprint(); f.LinesExpanded != 0 || f.LinesCompact != LinesPerPage {
		t.Fatalf("after full-line store: %+v", f)
	}
	// Storing the line's own epoch stays compact.
	r.Store(5, e1)
	if f := r.Footprint(); f.LinesExpanded != 0 {
		t.Fatalf("same-epoch store expanded the line: %+v", f)
	}
	// A divergent byte expands the line and preserves its neighbours.
	r.Store(5, e2)
	if f := r.Footprint(); f.LinesExpanded != 1 {
		t.Fatalf("divergent store did not expand: %+v", f)
	}
	if r.Load(4) != e1 || r.Load(5) != e2 || r.Load(6) != e1 {
		t.Fatalf("copy-out lost neighbours: %v %v %v", r.Load(4), r.Load(5), r.Load(6))
	}
	// A partial store that makes the line uniform re-compacts it.
	r.Store(5, e1)
	if f := r.Footprint(); f.LinesExpanded != 1 {
		t.Fatalf("single-byte store should not recompact: %+v", f)
	}
	r.StoreRange(0, 8, e1) // partial range store leaves the line uniform
	if f := r.Footprint(); f.LinesExpanded != 0 {
		t.Fatalf("uniform partial store did not recompact: %+v", f)
	}
	if got, eq, loads := r.LoadAllEqual(0, LineBytes); !eq || got != e1 || loads != LineBytes {
		t.Fatalf("recompacted line: LoadAllEqual = %v,%v,%d", got, eq, loads)
	}
}

// Word-packed scanning of expanded lines must report the exact per-byte
// mismatch index for every alignment, including odd offsets and mismatches
// in either half of a packed word.
func TestExpandedScanMismatchIndex(t *testing.T) {
	e1, e2 := layout.Pack(1, 1), layout.Pack(2, 2)
	for mismatch := 0; mismatch < 24; mismatch++ {
		for start := 0; start <= mismatch; start++ {
			r := New()
			r.StoreRange(0, 64, e1)
			r.Store(uint64(mismatch), e2) // expands the line
			n := 24 - start
			_, eq, loads := r.LoadAllEqual(uint64(start), n)
			wantEq, wantLoads := true, n
			switch {
			case mismatch == start && n > 1:
				// e0 is the divergent epoch itself; the mismatch is the
				// first byte after it.
				wantEq, wantLoads = false, 2
			case mismatch > start && mismatch-start < n:
				wantEq, wantLoads = false, mismatch-start+1
			}
			if eq != wantEq || loads != wantLoads {
				t.Fatalf("start=%d mismatch=%d n=%d: eq=%v loads=%d, want %v,%d",
					start, mismatch, n, eq, loads, wantEq, wantLoads)
			}
		}
	}
}

// Released pages recycle through the free list: a second region (or a
// reset region) re-materializes without growing the pool miss counter.
func TestPagePoolRecycles(t *testing.T) {
	r := New()
	e := layout.Pack(1, 1)
	r.StoreRange(0, PageBytes*2, e)
	r.Store(3, layout.Pack(2, 2)) // force one expansion so bytes are attached
	before := Global()
	r.Release()
	after := Global()
	if after.PoolPuts < before.PoolPuts+2 && after.PoolDrops == before.PoolDrops {
		t.Fatalf("release parked no pages: before=%+v after=%+v", before, after)
	}
	// Re-materialize: should be served by the list (hits grow, misses flat)
	// unless the pool was already full and the pages were dropped.
	if after.PoolPages > 0 {
		misses := after.PoolMisses
		r2 := New()
		r2.StoreRange(0, PageBytes, e)
		if g := Global(); g.PoolMisses != misses {
			t.Fatalf("re-materialization missed the pool: %+v", g)
		}
		// A recycled page must read as zero epochs.
		if got := r2.Load(PageBytes - 1); got != e {
			t.Fatalf("recycled page lost the new store: %v", got)
		}
		r2.Release()
	}
	// Reset also recycles and the region stays usable.
	r.StoreRange(0, 64, e)
	r.Reset()
	if r.Load(0) != 0 || r.MappedPages() != 0 {
		t.Fatal("reset region not clean")
	}
}

// Release must drive the region's share of the global live gauges back to
// where it started, so long-lived service processes report flat curves.
func TestGlobalGaugesReturnToBaseline(t *testing.T) {
	for mode, mk := range regions() {
		before := Global()
		r := mk()
		r.StoreRange(0, PageBytes*3, layout.Pack(1, 1))
		r.Store(1, layout.Pack(2, 2))
		mid := Global()
		if mid.MappedPages < before.MappedPages+3 {
			t.Fatalf("%s: mapped pages gauge did not grow: %+v -> %+v", mode, before, mid)
		}
		r.Release()
		after := Global()
		if after.MappedPages != before.MappedPages || after.LinesExpanded != before.LinesExpanded {
			t.Fatalf("%s: gauges did not return to baseline: before=%+v after=%+v", mode, before, after)
		}
	}
}

// Property: a store is observed by a subsequent load at the same address
// and at no other address.
func TestStoreIsolationProperty(t *testing.T) {
	f := func(addr uint32, tid uint8, clock uint32, other uint32) bool {
		r := New()
		e := layout.Pack(int(tid), clock&layout.MaxClock())
		r.Store(uint64(addr), e)
		if r.Load(uint64(addr)) != e {
			return false
		}
		if other != addr && r.Load(uint64(other)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the unsynchronized fast lane and the atomic variant compute
// identical states for any serialized operation sequence.
func TestModesAgreeProperty(t *testing.T) {
	f := func(ops []struct {
		Addr  uint16
		N     uint8
		Clock uint32
		Kind  uint8
	}) bool {
		fast, slow := New(), NewConcurrent()
		for _, op := range ops {
			addr := uint64(op.Addr)
			n := int(op.N%8) + 1
			e := layout.Pack(int(op.Clock%7), op.Clock&layout.MaxClock())
			switch op.Kind % 4 {
			case 0:
				fast.Store(addr, e)
				slow.Store(addr, e)
			case 1:
				old := fast.Load(addr)
				if fast.CompareAndSwap(addr, old, e) != slow.CompareAndSwap(addr, old, e) {
					return false
				}
			case 2:
				fast.StoreRange(addr, n, e)
				slow.StoreRange(addr, n, e)
			case 3:
				old := fast.Load(addr)
				if fast.CompareAndSwapRange(addr, n, old, e) != slow.CompareAndSwapRange(addr, n, old, e) {
					return false
				}
			}
			fe, feq, fl := fast.LoadAllEqual(addr, n)
			se, seq, sl := slow.LoadAllEqual(addr, n)
			if fe != se || feq != seq || fl != sl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The access path must be allocation-free once a page is mapped: this is
// the zero-allocation guarantee the detector hot path builds on. The
// compact-line paths are covered here (StoreRange(0,64) collapses line 0).
func TestHotPathZeroAllocs(t *testing.T) {
	for mode, mk := range regions() {
		r := mk()
		e := layout.Pack(1, 1)
		r.StoreRange(0, 64, e)
		checks := map[string]func(){
			"Load":                func() { _ = r.Load(7) },
			"Store":               func() { r.Store(7, e) },
			"CompareAndSwap":      func() { r.CompareAndSwap(7, e, e) },
			"LoadAllEqual":        func() { _, _, _ = r.LoadAllEqual(8, 8) },
			"CompareAndSwapRange": func() { r.CompareAndSwapRange(8, 8, e, e) },
			"StoreRange":          func() { r.StoreRange(8, 8, e) },
		}
		for name, fn := range checks {
			if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
				t.Errorf("%s: %s allocates %.1f per op, want 0", mode, name, allocs)
			}
		}
	}
}

// Expanded-line traffic — divergent stores, word scans over per-byte
// epochs, expansion and recompaction cycles — must also be allocation-free
// once the page's per-byte store exists.
func TestExpandedPathZeroAllocs(t *testing.T) {
	r := New()
	e1, e2 := layout.Pack(1, 1), layout.Pack(2, 2)
	r.StoreRange(0, 64, e1)
	r.Store(3, e2) // attach the per-byte store
	checks := map[string]func(){
		"LoadExpanded":        func() { _ = r.Load(3) },
		"StoreExpanded":       func() { r.Store(3, e2) },
		"ScanExpanded":        func() { _, _, _ = r.LoadAllEqual(0, 8) },
		"ExpandCollapseCycle": func() { r.Store(70, e2); r.StoreRange(64, 64, e1) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// Reset with pool recycling must be allocation-free in the steady state:
// pages park on the free list and the next era re-materializes from it
// (including the re-expansion, since recycled pages keep their per-byte
// arrays attached).
func TestResetRecycleZeroAllocs(t *testing.T) {
	r := New()
	e1, e2 := layout.Pack(1, 1), layout.Pack(2, 2)
	cycle := func() {
		r.StoreRange(0, PageBytes, e1)
		r.Store(5, e2) // divergence → expansion
		r.Reset()
	}
	cycle() // warm-up: attach byte arrays, populate the pool
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("reset/recycle cycle allocates %.1f per op, want 0", allocs)
	}
}

// Concurrent CAS from many goroutines: exactly one writer per round wins,
// and the final value is one of the proposed epochs. This exercises the
// §4.3 atomicity argument with real concurrency, on the concurrent
// (atomic) variant of the region.
func TestConcurrentCASSingleWinner(t *testing.T) {
	r := NewConcurrent()
	const writers = 16
	const rounds = 200
	for round := 0; round < rounds; round++ {
		old := r.Load(42)
		var wg sync.WaitGroup
		wins := make([]bool, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wins[w] = r.CompareAndSwap(42, old, layout.Pack(w%255, uint32(round+1)))
			}(w)
		}
		wg.Wait()
		won := 0
		for _, ok := range wins {
			if ok {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, won)
		}
	}
}

// Concurrent mixed traffic on the atomic variant: goroutines hammer
// disjoint and overlapping pages while another goroutine polls footprint.
// Run under -race in CI; the assertions only check basic sanity.
func TestConcurrentMixedStress(t *testing.T) {
	r := NewConcurrent()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * PageBytes / 2 // overlapping pages
			e := layout.Pack(w, 1)
			for i := 0; i < 500; i++ {
				r.StoreRange(base+uint64(i%64)*8, 8, e)
				if got, eq, _ := r.LoadAllEqual(base, 8); eq && got != 0 && layout.Clock(got) == 0 {
					t.Errorf("epoch with zero clock observed: %v", got)
					return
				}
				r.CompareAndSwap(base, r.Load(base), e)
			}
		}(w)
	}
	wg.Wait()
	if r.MappedPages() == 0 {
		t.Fatal("no pages mapped after stress")
	}
}

func benchRegion(mode string) *Region {
	if mode == "concurrent" {
		return NewConcurrent()
	}
	return New()
}

func BenchmarkLoad(b *testing.B) {
	for _, mode := range []string{"unsync", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRegion(mode)
			r.Store(100, layout.Pack(1, 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.Load(100)
			}
		})
	}
}

func BenchmarkLoadAllEqual8(b *testing.B) {
	for _, mode := range []string{"unsync", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRegion(mode)
			r.StoreRange(100, 8, layout.Pack(1, 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, _ = r.LoadAllEqual(100, 8)
			}
		})
	}
}

func BenchmarkCAS(b *testing.B) {
	for _, mode := range []string{"unsync", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRegion(mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := layout.Pack(1, uint32(i)&layout.MaxClock())
				r.CompareAndSwap(100, r.Load(100), e)
			}
		})
	}
}

func BenchmarkCASRange8(b *testing.B) {
	for _, mode := range []string{"unsync", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRegion(mode)
			prev := vclock.Epoch(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := layout.Pack(1, uint32(i+1)&layout.MaxClock())
				r.CompareAndSwapRange(256, 8, prev, e)
				prev = e
			}
		})
	}
}

func BenchmarkStoreRange8(b *testing.B) {
	for _, mode := range []string{"unsync", "concurrent"} {
		b.Run(mode, func(b *testing.B) {
			r := benchRegion(mode)
			e := layout.Pack(1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.StoreRange(512, 8, e)
			}
		})
	}
}

// BenchmarkLoadAllEqual8Compact measures the 8-byte check when the line is
// compact: one epoch compare validates the whole access.
func BenchmarkLoadAllEqual8Compact(b *testing.B) {
	r := New()
	r.StoreRange(64, 64, layout.Pack(1, 1)) // full line → compact
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = r.LoadAllEqual(100, 8)
	}
}

// BenchmarkLoadAllEqual64Line measures a whole-line check on a compact
// line — the paper's line-level vector compare in one comparison.
func BenchmarkLoadAllEqual64Line(b *testing.B) {
	r := New()
	r.StoreRange(64, 64, layout.Pack(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = r.LoadAllEqual(64, 64)
	}
}

// BenchmarkStoreRange64Collapse measures a full-line store, which writes
// one compact epoch instead of 64.
func BenchmarkStoreRange64Collapse(b *testing.B) {
	r := New()
	e1, e2 := layout.Pack(1, 1), layout.Pack(1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			r.StoreRange(128, 64, e1)
		} else {
			r.StoreRange(128, 64, e2)
		}
	}
}

// BenchmarkResetRecycle measures a touch-then-reset cycle over four pages:
// the steady state is four pool round-trips and header scrubs, no
// allocation.
func BenchmarkResetRecycle(b *testing.B) {
	r := New()
	e := layout.Pack(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StoreRange(0, PageBytes*4, e)
		r.Reset()
	}
}

// BenchmarkLoadPageSpread measures the last-page cache under page-switching
// traffic: alternating accesses across pages defeat the cache and pay the
// map lookup.
func BenchmarkLoadPageSpread(b *testing.B) {
	r := New()
	for p := 0; p < 16; p++ {
		r.Store(uint64(p)*PageBytes, layout.Pack(1, 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Load(uint64(i%16) * PageBytes)
	}
}
