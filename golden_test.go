package clean

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestTimelineGolden pins the exact Chrome trace-event JSON produced by
// `cleanrun -w fft -scale test -timeline`: timestamps are the machine's
// logical operation counter and event order is deterministic, so the file
// must be byte-identical across runs, platforms, and PRs. Regenerate with
// `go test -run TimelineGolden -update` after an intentional format or
// scheduling change, and eyeball the diff — an unintended change here
// means telemetry perturbed the execution.
func TestTimelineGolden(t *testing.T) {
	tl := NewTimeline()
	rep, err := RunWorkload("fft", "test", true, Config{
		Detection: DetectCLEAN,
		Timeline:  tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	var buf bytes.Buffer
	if _, err := tl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// The output must be a loadable trace-event document regardless of
	// golden-file state: a JSON object with a traceEvents array whose
	// entries carry the fields Perfetto requires.
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			for _, k := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event %d (ph X) missing %q: %v", i, k, ev)
				}
			}
		case "i":
			for _, k := range []string{"name", "cat", "ts", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event %d (ph i) missing %q: %v", i, k, ev)
				}
			}
		case "M":
			if name, _ := ev["name"].(string); name != "thread_name" && name != "process_name" {
				t.Fatalf("event %d: unexpected metadata event %q", i, name)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}

	golden := filepath.Join("testdata", "timeline_fft_test.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("timeline output differs from %s (%d vs %d bytes); regenerate with -update if intended",
			golden, len(got), len(want))
	}
}

// TestRunReportGolden pins the RunReport JSON for the same run, minus the
// one nondeterministic field (elapsed_seconds, zeroed before comparison),
// and round-trips it through the strict decoder.
func TestRunReportGolden(t *testing.T) {
	rep, err := RunWorkload("fft", "test", true, Config{
		Detection:         DetectCLEAN,
		DeterministicSync: true,
		Metrics:           NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	rep.Telemetry.ElapsedSeconds = 0
	got, err := rep.Telemetry.Encode()
	if err != nil {
		t.Fatal(err)
	}

	decoded, err := DecodeRunReport(got)
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if decoded.Schema != rep.Telemetry.Schema || decoded.OutputHash != rep.Telemetry.OutputHash {
		t.Fatalf("round trip changed the report: %+v", decoded)
	}

	golden := filepath.Join("testdata", "runreport_fft_test.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("run report differs from %s; regenerate with -update if intended", golden)
	}
}
