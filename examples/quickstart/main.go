// Quickstart: the smallest CLEAN program. Two threads write the same
// shared location without synchronization — a write-after-write data race.
// Under CLEAN the execution stops with a race exception the moment the
// second write executes, in every schedule; adding a lock makes the same
// program complete.
package main

import (
	"errors"
	"fmt"
	"log"

	clean "repro"
)

func main() {
	fmt.Println("--- racy version: unordered writes to x ---")
	// The functional-options form validates the configuration eagerly;
	// clean.NewMachine(clean.Config{…}) still works but defers any
	// configuration error to Run.
	m, err := clean.New(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	x := m.AllocShared(8, 8)
	err = m.Run(func(t *clean.Thread) {
		child := t.Spawn(func(c *clean.Thread) {
			c.StoreU64(x, 1)
		})
		t.StoreU64(x, 2) // no happens-before edge to the child's write
		t.Join(child)
	})
	var re *clean.RaceError
	if !errors.As(err, &re) {
		log.Fatalf("expected a race exception, got %v", err)
	}
	fmt.Printf("race exception: %v\n", re)
	fmt.Printf("  kind=%v addr=%#x thread=%d conflicts with thread %d\n\n",
		re.Kind, re.Addr, re.TID, re.PrevTID)

	fmt.Println("--- fixed version: the writes are ordered by a mutex ---")
	m2, err := clean.New(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	y := m2.AllocShared(8, 8)
	l := m2.NewMutex()
	err = m2.Run(func(t *clean.Thread) {
		child := t.Spawn(func(c *clean.Thread) {
			c.Lock(l)
			c.StoreU64(y, c.LoadU64(y)+1)
			c.Unlock(l)
		})
		t.Lock(l)
		t.StoreU64(y, t.LoadU64(y)+1)
		t.Unlock(l)
		t.Join(child)
		fmt.Printf("final value: %d (both increments applied)\n", t.LoadU64(y))
	})
	if err != nil {
		log.Fatalf("fixed version must complete: %v", err)
	}
	fmt.Println("completed without exceptions")
}
