// Tornwrite: SFR write-atomicity (Fig. 1b of the paper), driven from
// real Go source through the gofront front end.
//
// testdata/tornwrite.go is ordinary Go: a logical 64-bit value stored as
// two adjacent 32-bit halves, written by two goroutines with no
// synchronization. On conventional hardware a schedule can interleave
// the half-writes and expose a "half-half" value that appears nowhere in
// the program — an out-of-thin-air result. gofront lowers the source
// into the prog IR, the static analyzer pins the WAW pairs to their
// source lines, and an exhaustive model check proves the CLEAN guarantee
// dynamically: every one of the interleavings dies with a WAW exception
// before the second region's conflicting half-write lands, so no
// execution survives to observe a torn value.
package main

import (
	_ "embed"
	"fmt"
	"log"

	clean "repro"
	"repro/internal/explore"
	"repro/internal/gofront"
	"repro/internal/machine"
	"repro/internal/staticrace"
)

//go:embed testdata/tornwrite.go
var src []byte

func main() {
	p, err := gofront.LoadSource("tornwrite.go", src)
	if err != nil {
		log.Fatal(err)
	}
	rep := staticrace.Analyze(p.Prog)
	fmt.Printf("static analysis of tornwrite.go: %v\n", rep.Verdict())
	for _, pair := range rep.Pairs {
		if pair.Verdict == staticrace.MustRace {
			fmt.Printf("  %s\n    races with %s\n",
				p.DescribeAccess(pair.A.Thread, pair.A.Index),
				p.DescribeAccess(pair.B.Thread, pair.B.Index))
		}
	}

	cfg, err := clean.NewConfig(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	res := explore.RunProgram(explore.Options{Detector: cfg.NewDetector, MaxRuns: 400000}, p.Prog, nil)
	if !res.Exhaustive() {
		log.Fatalf("interleaving space not exhausted in %d runs", res.Runs)
	}
	fmt.Printf("exhaustive model check: %d interleavings\n", res.Runs)
	fmt.Printf("  completed: %d   WAW exceptions: %d   deadlocks: %d\n",
		res.Completed, res.Exceptions[machine.WAW], res.Deadlocks)
	if res.Completed != 0 || res.Exceptions[machine.WAW] != res.Runs {
		log.Fatalf("expected every interleaving to die with a WAW exception: %+v", res)
	}
	fmt.Println("no interleaving survives to observe the half-half value:")
	fmt.Println("SFR write-atomicity holds for racy programs (§3.1)")
}
