// Tornwrite: SFR write-atomicity (Fig. 1b of the paper).
//
// On a 32-bit machine a 64-bit store compiles to two 32-bit stores. With
// two threads racing on the same variable, conventional hardware can
// expose a "half-half" value — 0x1_00000001 — that appears nowhere in the
// program: an out-of-thin-air result. CLEAN guarantees writes of a
// synchronization-free region appear atomic: any interleaving that would
// tear the value dies with a WAW exception before the second region's
// first conflicting byte is written, so completed executions only ever
// observe the two program values.
package main

import (
	"errors"
	"fmt"
	"log"

	clean "repro"
)

func main() {
	outcomes := map[string]int{}
	for seed := int64(0); seed < 80; seed++ {
		m, err := clean.New(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		x := m.AllocShared(8, 8)
		var final uint64
		err = m.Run(func(t *clean.Thread) {
			w1 := t.Spawn(func(c *clean.Thread) {
				// x = 0x1_00000000, stored in two halves.
				c.StoreU32(x+4, 0x1)
				c.StoreU32(x+0, 0x0)
			})
			w2 := t.Spawn(func(c *clean.Thread) {
				// x = 0x1, stored in two halves.
				c.StoreU32(x+4, 0x0)
				c.StoreU32(x+0, 0x1)
			})
			t.Join(w1)
			t.Join(w2)
			final = t.LoadU64(x)
		})
		var re *clean.RaceError
		switch {
		case errors.As(err, &re):
			outcomes[fmt.Sprintf("%v exception", re.Kind)]++
		case err != nil:
			log.Fatal(err)
		default:
			outcomes[fmt.Sprintf("completed, x=%#x", final)]++
			if final != 0x100000000 && final != 0x1 {
				log.Fatalf("out-of-thin-air value %#x observed!", final)
			}
		}
	}
	fmt.Println("80 schedules of the Fig. 1b torn-write race under CLEAN:")
	for k, v := range outcomes {
		fmt.Printf("  %-28s × %d\n", k, v)
	}
	fmt.Println("no completed run ever observed the half-half value 0x100000001:")
	fmt.Println("SFR write-atomicity holds for racy programs (§3.1)")
}
