// Diagnose: the §3.1 debugging workflow. A production CLEAN run stops at
// the *first* WAW/RAW race. To fix a benchmark you want them all — so the
// same schedule is re-run with CLEAN in monitor mode (enumerating every
// WAW/RAW race) and with the imprecise detector (surfacing the
// write-after-read conflicts CLEAN tolerates by design). The paper:
// "a precise race detector can be used alongside CLEAN in subsequent runs
// to systematically detect all races."
package main

import (
	"fmt"
	"log"

	clean "repro"
)

func main() {
	const workload = "canneal" // lock-free by design: races everywhere
	cfg, err := clean.NewConfig(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	d, err := clean.DiagnoseWorkload(workload, "simsmall", false, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if d.FirstException == nil {
		fmt.Println("the run completed — nothing to diagnose on this schedule")
		return
	}
	fmt.Printf("production run stopped at the first race:\n  %v\n\n", d.FirstException)

	fmt.Printf("monitor rerun of the same schedule found %d distinct WAW/RAW races:\n", len(d.AllWAWRAW))
	for i, r := range d.AllWAWRAW {
		if i == 8 {
			fmt.Printf("  … and %d more\n", len(d.AllWAWRAW)-i)
			break
		}
		fmt.Printf("  %-3v at %#06x  thread %d vs thread %d (SFR %d)\n",
			r.Kind, r.Addr, r.TID, r.PrevTID, r.SFR)
	}

	fmt.Printf("\nimprecise scan surfaced %d WAR conflicts (not exceptions under CLEAN):\n", len(d.WARHints))
	for i, h := range d.WARHints {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(d.WARHints)-i)
			break
		}
		fmt.Printf("  WAR near %#06x  thread %d vs thread %d\n", h.Addr, h.TID, h.PrevTID)
	}
	fmt.Println("\nfix the reported locations, and the §6.2.2 experiments will show the")
	fmt.Println("benchmark completing deterministically (see the 'modified' variants)")
}
