// Bankrace: the timing-dependent half of CLEAN's execution model (§3.1).
//
// An auditor thread reads account balances while a transfer thread moves
// money, with no synchronization between them. The read/write pair races;
// how it resolves depends on timing:
//
//   - read after write  → a RAW race: CLEAN raises an exception;
//   - read before write → a WAR race: CLEAN deliberately does not detect
//     it, and the execution completes — but §3.1 guarantees the completed
//     execution's reads returned the last happens-before write, so the
//     auditor saw a consistent pre-transfer snapshot, never a torn one.
//
// Running across many scheduler seeds shows both outcomes and verifies
// that every completed run produced the same consistent audit total.
package main

import (
	"errors"
	"fmt"
	"log"

	clean "repro"
)

const (
	accounts       = 4
	initialBalance = 1000
)

func run(seed int64) (total uint64, err error) {
	m, err := clean.New(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(seed))
	if err != nil {
		return 0, err
	}
	bal := m.AllocShared(accounts*8, 8)
	runErr := m.Run(func(t *clean.Thread) {
		for i := 0; i < accounts; i++ {
			t.StoreU64(bal+uint64(8*i), initialBalance)
		}
		auditor := t.Spawn(func(c *clean.Thread) {
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += c.LoadU64(bal + uint64(8*i))
				c.Work(2)
			}
			total = sum
		})
		// The unsynchronized transfer: 0 → 1.
		t.Work(3)
		t.StoreU64(bal, t.LoadU64(bal)-100)
		t.StoreU64(bal+8, t.LoadU64(bal+8)+100)
		t.Join(auditor)
	})
	return total, runErr
}

func main() {
	var exceptions, completions int
	totals := map[uint64]int{}
	for seed := int64(0); seed < 60; seed++ {
		total, err := run(seed)
		var re *clean.RaceError
		switch {
		case errors.As(err, &re):
			exceptions++
			if re.Kind == clean.WAR {
				log.Fatal("CLEAN must never raise WAR exceptions")
			}
		case err != nil:
			log.Fatal(err)
		default:
			completions++
			totals[total]++
		}
	}
	fmt.Printf("60 schedules: %d race exceptions (RAW), %d completions (the race resolved as WAR)\n",
		exceptions, completions)
	fmt.Printf("audit totals observed in completed runs: %v\n", totals)
	want := uint64(accounts * initialBalance)
	for total := range totals {
		if total != want {
			log.Fatalf("inconsistent audit total %d: the auditor saw a torn transfer", total)
		}
	}
	fmt.Printf("every completed run audited exactly %d — no out-of-thin-air totals,\n", want)
	fmt.Println("because a completed CLEAN execution's reads return the last happens-before write (§3.4)")
}
