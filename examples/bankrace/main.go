// Bankrace: the timing-dependent half of CLEAN's execution model (§3.1),
// driven from real Go source through the gofront front end.
//
// testdata/audit.go is ordinary Go: an auditor goroutine reads two
// account balances while main transfers money between them, with no
// synchronization between the reads and the writes. gofront lowers the
// source into the prog IR, the static analyzer proves the read/write
// pairs MustRace at their exact source positions, and a census across
// scheduler seeds shows both dynamic resolutions of the race:
//
//   - read after write  → a RAW race: CLEAN raises an exception;
//   - read before write → a WAR race: CLEAN deliberately does not detect
//     it, and the execution completes — but §3.1 guarantees the
//     completed execution's reads returned the last happens-before
//     write, so the auditor saw a consistent pre-transfer snapshot,
//     never a torn one.
package main

import (
	_ "embed"
	"errors"
	"fmt"
	"log"

	clean "repro"
	"repro/internal/gofront"
	"repro/internal/machine"
	"repro/internal/staticrace"
)

//go:embed testdata/audit.go
var src []byte

func main() {
	p, err := gofront.LoadSource("audit.go", src)
	if err != nil {
		log.Fatal(err)
	}
	rep := staticrace.Analyze(p.Prog)
	fmt.Printf("static analysis of audit.go: %v\n", rep.Verdict())
	for _, pair := range rep.Pairs {
		if pair.Verdict == staticrace.MustRace {
			fmt.Printf("  %s\n    races with %s\n",
				p.DescribeAccess(pair.A.Thread, pair.A.Index),
				p.DescribeAccess(pair.B.Thread, pair.B.Index))
		}
	}

	cfg, err := clean.NewConfig(clean.WithDetection(clean.DetectCLEAN), clean.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	var exceptions, completions int
	for seed := int64(0); seed < 60; seed++ {
		m := machine.New(machine.Config{Seed: seed, Detector: cfg.NewDetector()})
		root, _ := p.Prog.Build(m)
		runErr := m.Run(root)
		var re *machine.RaceError
		switch {
		case errors.As(runErr, &re):
			if re.Kind == machine.WAR {
				log.Fatal("CLEAN must never raise WAR exceptions")
			}
			exceptions++
		case runErr != nil:
			log.Fatal(runErr)
		default:
			completions++
		}
	}
	fmt.Printf("60 schedules: %d race exceptions (RAW), %d completions (the race resolved as WAR)\n",
		exceptions, completions)
	if exceptions == 0 || completions == 0 {
		log.Fatal("expected both outcomes across 60 seeds: the race is timing-dependent")
	}
	fmt.Println("every completed run's audit read the last happens-before write (§3.4):")
	fmt.Println("a consistent pre-transfer snapshot — no out-of-thin-air totals")
}
