// The timing-dependent half of CLEAN's execution model (§3.1), as real
// Go: an auditor goroutine reads two account balances while main moves
// money between them with no synchronization. Read after write is a RAW
// race and raises an exception; read before write is a WAR race CLEAN
// deliberately tolerates, and the run completes with a consistent
// pre-transfer snapshot.
package main

var a, b int64

var done = make(chan bool)

func audit() {
	_ = a
	_ = b
	done <- true
}

func main() {
	go audit()
	a = a - 100
	b = b + 100
	<-done
}
