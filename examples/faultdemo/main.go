// Faultdemo: deterministic fault injection and graceful degradation.
//
// A worker pool moves items through a mutex-protected queue while a fault
// plan kills one worker at its second lock acquisition — the classic
// lock-holder death. The machine contains the crash: the dead worker's
// mutex is orphaned, the next thread to want it gets a structured
// ErrOrphanedLock (EOWNERDEAD semantics) with a full diagnostic dump, and
// — because synchronization is deterministic (Kendo) — rerunning the same
// seed and plan reproduces the failure byte-for-byte. That replayability
// is the point: a contained failure under CLEAN is a debuggable artifact,
// not a heisenbug.
//
// The same machinery drives `cleanrun -faults <kind>` and the harness's
// `cleanbench -exp resilience` fault matrix.
package main

import (
	"errors"
	"fmt"
	"log"

	clean "repro"
	"repro/internal/faults"
)

const (
	workers = 4
	items   = 64
	seed    = 7
)

// run executes the pool under the fault plan and reports the outcome.
func run(plan faults.Plan) (outcome string, crashes uint64) {
	inj := faults.New(plan)
	m, err := clean.New(
		clean.WithDetection(clean.DetectCLEAN),
		clean.WithDeterministicSync(true), // Kendo: makes the failure replayable
		clean.WithSeed(seed),
		clean.WithFaultInjector(inj),
	)
	if err != nil {
		log.Fatal(err)
	}
	next := m.AllocShared(8, 8)   // queue cursor
	done := m.AllocShared(8*8, 8) // per-worker completion counts
	l := m.NewMutex()
	err = m.Run(func(t *clean.Thread) {
		var ws []*clean.Thread
		for i := 0; i < workers; i++ {
			slot := done + uint64(8*i)
			ws = append(ws, t.Spawn(func(w *clean.Thread) {
				for {
					w.Lock(l)
					n := w.LoadU64(next)
					if n >= items {
						w.Unlock(l)
						return
					}
					w.StoreU64(next, n+1)
					w.Unlock(l)
					w.Work(20) // process the item
					w.StoreU64(slot, w.LoadU64(slot)+1)
				}
			}))
		}
		for _, w := range ws {
			t.Join(w)
		}
	})

	switch {
	case err == nil:
		return "clean", m.Stats().Crashes
	default:
		var merr *clean.MachineError
		if errors.As(err, &merr) {
			fmt.Printf("  contained failure: %v\n", merr)
			if merr.Kind == clean.ErrOrphanedLock && merr.Dump != nil {
				for _, o := range merr.Dump.Orphans {
					fmt.Printf("  orphan: mutex %d held by dead thread %d\n", o.LockID, o.HolderID)
				}
			}
		}
		return fmt.Sprintf("%v", err), m.Stats().Crashes
	}
}

func main() {
	log.SetFlags(0)

	// Fault-free baseline.
	base, _ := run(faults.Plan{})
	fmt.Printf("no faults: %s\n", base)

	// Kill worker thread 2 at its second mutex acquisition.
	plan := faults.Plan{Seed: seed, Injections: []faults.Injection{
		{Kind: faults.LockHolderCrash, TID: 2, AtAcquire: 2},
	}}
	fmt.Printf("\nplan: %s\n", plan)
	out1, crashes := run(plan)
	if crashes != 1 {
		log.Fatalf("expected exactly one injected crash, got %d", crashes)
	}

	// Deterministic replay: same seed + plan → identical outcome.
	fmt.Println("\nreplaying the same seed and plan:")
	out2, _ := run(plan)
	if out1 != out2 {
		log.Fatalf("replay diverged:\n  run:    %s\n  replay: %s", out1, out2)
	}
	fmt.Println("\nreplay reproduced the failure byte-identically")
}
