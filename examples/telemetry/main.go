// Telemetry: the observability layer end to end. One deterministic run of
// a benchmark stand-in under full CLEAN (detection + Kendo) with a metric
// registry and a timeline attached, showing the three surfaces:
//
//   - the metric registry: machine.* access classification, core.* detector
//     work (same-epoch fast path vs epoch loads/updates), kendo.* wait
//     counters with p50/p95/p99 yield histograms;
//   - the timeline: per-thread SFR spans, lock hold/contend spans, Kendo
//     wait spans and race-check marks, written as Chrome trace-event JSON
//     (load telemetry_timeline.json in Perfetto or chrome://tracing);
//   - the RunReport: the schema-versioned JSON document unifying identity,
//     outcome and every metric, which cleanbench -json aggregates into
//     BENCH_<experiment>.json files.
//
// Everything here is reachable from the CLIs too: cleanrun -timeline and
// -report produce the same artifacts for any workload.
package main

import (
	"fmt"
	"log"
	"os"

	clean "repro"
)

func main() {
	log.SetFlags(0)

	metrics := clean.NewMetrics()
	timeline := clean.NewTimeline()
	cfg, err := clean.NewConfig(
		clean.WithDetection(clean.DetectCLEAN),
		clean.WithDeterministicSync(true),
		clean.WithMetrics(metrics),
		clean.WithTimeline(timeline),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := clean.RunWorkload("fft", "test", true, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Err != nil {
		log.Fatalf("run failed: %v", rep.Err)
	}

	// Surface 1: the registry. Counters are exact (they mirror the
	// machine's Stats), gauges carry derived rates, histograms summarize
	// distributions without storing samples.
	snap := metrics.Snapshot()
	fmt.Println("metrics (selected):")
	for _, name := range []string{
		"machine.ops",
		"machine.shared_reads",
		"machine.shared_writes",
		"machine.private_accesses",
		"machine.sync_ops",
		"core.accesses",
		"core.same_epoch_skips",
		"core.epoch_updates",
		"kendo.wait_ops",
	} {
		fmt.Printf("  %-26s %d\n", name, snap.Counters[name])
	}
	fmt.Printf("  %-26s %.2f\n", "machine.shared_per_1k_ops", snap.Gauges["machine.shared_per_1k_ops"])
	if h, ok := snap.Histograms["kendo.wait_yields"]; ok {
		fmt.Printf("  kendo.wait_yields          p50 %.0f  p95 %.0f  p99 %.0f (%d waits)\n",
			h.P50, h.P95, h.P99, h.Count)
	}

	// Surface 2: the timeline. Timestamps are the machine's logical
	// operation counter, so the file is identical on every run.
	f, err := os.Create("telemetry_timeline.json")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := timeline.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntimeline: telemetry_timeline.json (%d events) — open in Perfetto or chrome://tracing\n",
		timeline.Events())

	// Surface 3: the RunReport, already assembled by RunWorkload.
	data, err := rep.Telemetry.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun report (%s, outcome %s, output %s):\n%s",
		rep.Telemetry.Workload, rep.Telemetry.Outcome, rep.Telemetry.OutputHash, data)
}
