// Detreplay: deterministic execution (§3.3, §6.2.2).
//
// Worker threads repeatedly lock a shared structure and append to a log;
// the lock-acquisition order — and therefore the log — depends on the
// schedule. Without deterministic synchronization, different scheduler
// seeds produce different logs. With Kendo enabled, every seed produces
// byte-identical results: the property that lets racy-program debugging,
// replica-based fault tolerance, and CAD flows rely on repeatable runs.
package main

import (
	"fmt"
	"log"

	clean "repro"
)

const (
	workers = 4
	rounds  = 10
)

func run(seed int64, deterministic bool) string {
	m, err := clean.New(
		clean.WithDetection(clean.DetectCLEAN),
		clean.WithDeterministicSync(deterministic),
		clean.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	logBuf := m.AllocShared(workers*rounds, 8)
	cursor := m.AllocShared(8, 8)
	l := m.NewMutex()
	var out []byte
	err = m.Run(func(t *clean.Thread) {
		kids := make([]*clean.Thread, 0, workers)
		for i := 0; i < workers; i++ {
			pace := i + 1
			kids = append(kids, t.Spawn(func(c *clean.Thread) {
				for r := 0; r < rounds; r++ {
					c.Work(pace * 3) // unequal progress rates
					c.Lock(l)
					pos := c.LoadU64(cursor)
					c.StoreU8(logBuf+pos, byte('A'+c.ID-1))
					c.StoreU64(cursor, pos+1)
					c.Unlock(l)
				}
			}))
		}
		for _, k := range kids {
			t.Join(k)
		}
		out = make([]byte, workers*rounds)
		for i := range out {
			out[i] = c8(t, logBuf+uint64(i))
		}
	})
	if err != nil {
		log.Fatalf("seed %d: %v", seed, err)
	}
	return string(out)
}

func c8(t *clean.Thread, addr uint64) byte { return t.LoadU8(addr) }

func main() {
	fmt.Println("--- nondeterministic synchronization: the log varies with the seed ---")
	seen := map[string]bool{}
	for seed := int64(0); seed < 6; seed++ {
		logStr := run(seed, false)
		seen[logStr] = true
		fmt.Printf("seed %d: %s\n", seed, logStr)
	}
	fmt.Printf("distinct logs: %d\n\n", len(seen))

	fmt.Println("--- Kendo deterministic synchronization: every seed agrees ---")
	ref := run(0, true)
	for seed := int64(0); seed < 6; seed++ {
		logStr := run(seed, true)
		marker := "=="
		if logStr != ref {
			marker = "!!"
		}
		fmt.Printf("seed %d %s %s\n", seed, marker, logStr)
		if logStr != ref {
			log.Fatal("deterministic mode diverged")
		}
	}
	fmt.Println("all runs identical: exception-free CLEAN executions are deterministic (§3.1)")
}
