// Benchmarks: driving the SPLASH-2/PARSEC stand-in suite through the
// public API. For a sample of the registry this runs both variants of each
// benchmark under full CLEAN (detection + deterministic synchronization)
// and prints what the §6.2.2 experiments measure: racy "unmodified"
// variants always die with a race exception; race-free "modified" variants
// always complete with a schedule-independent output fingerprint.
package main

import (
	"errors"
	"fmt"
	"log"

	clean "repro"
)

func main() {
	cfg := func(seed int64) clean.Config {
		c, err := clean.NewConfig(
			clean.WithDetection(clean.DetectCLEAN),
			clean.WithDeterministicSync(true),
			clean.WithSeed(seed),
		)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	fmt.Printf("%-16s %-10s %-28s %s\n", "BENCHMARK", "VARIANT", "OUTCOME", "DETAIL")
	for _, info := range clean.Workloads() {
		if info.Suite != "splash2" && info.Name != "dedup" && info.Name != "canneal" {
			continue // keep the demo short: SPLASH-2 + two PARSEC highlights
		}
		// Racy variant, when the benchmark has races.
		if info.Racy {
			rep, err := clean.RunWorkload(info.Name, "test", false, cfg(0))
			if err != nil {
				log.Fatal(err)
			}
			var re *clean.RaceError
			if errors.As(rep.Err, &re) {
				fmt.Printf("%-16s %-10s %-28s %v race at %#x\n",
					info.Name, "unmodified", "race exception", re.Kind, re.Addr)
			} else {
				fmt.Printf("%-16s %-10s %-28s %v\n", info.Name, "unmodified", "UNEXPECTED", rep.Err)
			}
		}
		// Modified (race-free) variant: deterministic across two seeds.
		if !info.HasModified {
			fmt.Printf("%-16s %-10s %-28s %s\n", info.Name, "modified", "(none)", "lock-free by design, §6.1")
			continue
		}
		r1, err := clean.RunWorkload(info.Name, "test", true, cfg(1))
		if err != nil {
			log.Fatal(err)
		}
		r2, err := clean.RunWorkload(info.Name, "test", true, cfg(2))
		if err != nil {
			log.Fatal(err)
		}
		if r1.Err != nil || r2.Err != nil {
			log.Fatalf("%s modified raced: %v / %v", info.Name, r1.Err, r2.Err)
		}
		det := "deterministic"
		if r1.OutputHash != r2.OutputHash {
			det = "NONDETERMINISTIC"
		}
		fmt.Printf("%-16s %-10s %-28s output %#x, %d shared accesses\n",
			info.Name, "modified", det, r1.OutputHash, r1.Stats.SharedAccesses())
	}
}
