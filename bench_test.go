// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per exhibit (DESIGN.md §5 maps each to its paper
// result). `go test -bench=. -benchmem` runs them all at reduced scale;
// cmd/cleanbench produces the full formatted tables.
package clean_test

import (
	"fmt"
	"testing"

	clean "repro"

	"repro/internal/harness"
	"repro/internal/hwsim"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// figBenchmarks is the representative subset used for per-benchmark
// fan-out: the paper's extremes (lu_cb: highest shared-access frequency;
// dedup: byte granularity; swaptions: almost no sharing) plus one
// barrier-, one lock-, and one queue-structured kernel.
var figBenchmarks = []string{"lu_cb", "dedup", "swaptions", "ocean_cp", "fmm", "ferret"}

func mustWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	return w
}

func runOnce(b *testing.B, w workloads.Workload, cfg clean.Config) {
	b.Helper()
	m := clean.NewMachine(cfg)
	root, _ := w.Build(m, workloads.ScaleSimSmall, workloads.Modified)
	if err := m.Run(root); err != nil {
		b.Fatalf("%s: %v", w.Name, err)
	}
}

// BenchmarkFig6 measures the software-only CLEAN cost decomposition: the
// uninstrumented baseline, deterministic synchronization alone, WAW/RAW
// detection alone, and full CLEAN (paper: 7.8x average, 5.8x of it
// detection).
func BenchmarkFig6(b *testing.B) {
	configs := []struct {
		name string
		cfg  clean.Config
	}{
		{"base", clean.Config{YieldEvery: 32}},
		{"detsync", clean.Config{YieldEvery: 32, DeterministicSync: true}},
		{"detect", clean.Config{YieldEvery: 32, Detection: clean.DetectCLEAN}},
		{"full", clean.Config{YieldEvery: 32, DeterministicSync: true, Detection: clean.DetectCLEAN}},
	}
	for _, name := range figBenchmarks {
		w := mustWorkload(b, name)
		for _, c := range configs {
			b.Run(name+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := c.cfg
					cfg.Seed = int64(i)
					runOnce(b, w, cfg)
				}
			})
		}
	}
}

// BenchmarkFig7 reports each kernel's shared-access frequency (the paper
// plots accesses per second; the per-kiloop metric is the
// machine-independent equivalent).
func BenchmarkFig7(b *testing.B) {
	for _, name := range figBenchmarks {
		w := mustWorkload(b, name)
		b.Run(name, func(b *testing.B) {
			var freq float64
			for i := 0; i < b.N; i++ {
				m := clean.NewMachine(clean.Config{YieldEvery: 32, Seed: int64(i)})
				root, _ := w.Build(m, workloads.ScaleSimSmall, workloads.Modified)
				if err := m.Run(root); err != nil {
					b.Fatal(err)
				}
				s := m.Stats()
				freq = float64(s.SharedAccesses()) / float64(s.Ops) * 1000
			}
			b.ReportMetric(freq, "shared/kop")
		})
	}
}

// BenchmarkFig8 measures the §4.4 multi-byte (vectorization) optimization:
// detection with the optimization on vs off.
func BenchmarkFig8(b *testing.B) {
	for _, name := range figBenchmarks {
		w := mustWorkload(b, name)
		for _, vec := range []bool{true, false} {
			sub := "vec"
			if !vec {
				sub = "novec"
			}
			b.Run(name+"/"+sub, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runOnce(b, w, clean.Config{
						YieldEvery: 32, Seed: int64(i),
						Detection: clean.DetectCLEAN, DisableMultibyteOpt: !vec,
					})
				}
			})
		}
	}
}

// BenchmarkTable1 measures the clock-rollover machinery (§4.5): a narrow
// clock that forces deterministic resets vs the wide 28-bit clock.
func BenchmarkTable1(b *testing.B) {
	w := mustWorkload(b, "fmm")
	for _, tc := range []struct {
		name      string
		clockBits uint
		tidBits   uint
	}{
		// 6 clock bits roll over within a simsmall run — the same
		// proportional scaling Table 1's harness runner applies at
		// native scale with 10 bits (paper: 23 vs 28).
		{"narrow6", 6, 8},
		{"wide28", 28, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rollovers uint64
			for i := 0; i < b.N; i++ {
				m := clean.NewMachine(clean.Config{
					YieldEvery: 32, Seed: int64(i),
					DeterministicSync: true, Detection: clean.DetectCLEAN,
					ClockBits: tc.clockBits, TIDBits: tc.tidBits,
				})
				root, _ := w.Build(m, workloads.ScaleSimSmall, workloads.Modified)
				if err := m.Run(root); err != nil {
					b.Fatal(err)
				}
				rollovers += m.Stats().Rollovers
			}
			b.ReportMetric(float64(rollovers)/float64(b.N), "rollovers/run")
		})
	}
}

// recordBenchTrace captures one trace per workload for the hardware
// benchmarks (outside the timed region).
func recordBenchTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	w := mustWorkload(b, name)
	rec := &trace.Recorder{}
	m := clean.NewMachine(clean.Config{Seed: 1, YieldEvery: 32, Tracer: rec})
	root, _ := w.Build(m, workloads.ScaleSimSmall, workloads.Modified)
	if err := m.Run(root); err != nil {
		b.Fatal(err)
	}
	return &rec.Trace
}

// BenchmarkFig9 runs the hardware timing simulation (baseline vs CLEAN
// hardware) and reports the detection slowdown (paper: 10.4% average,
// 46.7% worst).
func BenchmarkFig9(b *testing.B) {
	for _, name := range figBenchmarks {
		tr := recordBenchTrace(b, name)
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				base := hwsim.Simulate(tr, hwsim.Config{Scheme: hwsim.SchemeNone})
				cl := hwsim.Simulate(tr, hwsim.Config{Scheme: hwsim.SchemeClean})
				slow = (float64(cl.TotalCycles)/float64(base.TotalCycles) - 1) * 100
			}
			b.ReportMetric(slow, "slowdown%")
		})
	}
}

// BenchmarkFig10 reports the hardware access-classification shares (paper:
// ~54.2% fast path, ~90% private+fast, expansions <0.02%).
func BenchmarkFig10(b *testing.B) {
	for _, name := range figBenchmarks {
		tr := recordBenchTrace(b, name)
		b.Run(name, func(b *testing.B) {
			var fast, privOrFast float64
			for i := 0; i < b.N; i++ {
				r := hwsim.Simulate(tr, hwsim.Config{Scheme: hwsim.SchemeClean})
				fast = r.ClassFraction(hwsim.ClassFast) * 100
				privOrFast = fast + r.ClassFraction(hwsim.ClassPrivate)*100
			}
			b.ReportMetric(fast, "fast%")
			b.ReportMetric(privOrFast, "priv+fast%")
		})
	}
}

// BenchmarkFig11 compares the metadata organizations: 1-byte epochs
// (upper bound), CLEAN's compacted layout, and uncompacted 4-byte epochs
// (which the paper shows degrading the high-miss-rate benchmarks).
func BenchmarkFig11(b *testing.B) {
	schemes := []hwsim.Scheme{hwsim.Scheme1Byte, hwsim.SchemeClean, hwsim.Scheme4Byte}
	for _, name := range []string{"lu_cb", "ocean_cp", "dedup"} {
		tr := recordBenchTrace(b, name)
		base := hwsim.Simulate(tr, hwsim.Config{Scheme: hwsim.SchemeNone})
		for _, s := range schemes {
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				var slow float64
				for i := 0; i < b.N; i++ {
					r := hwsim.Simulate(tr, hwsim.Config{Scheme: s})
					slow = (float64(r.TotalCycles)/float64(base.TotalCycles) - 1) * 100
				}
				b.ReportMetric(slow, "slowdown%")
			})
		}
	}
}

// BenchmarkDetect exercises the §6.2.2 detection experiment: a racy
// benchmark run to its (always raised) race exception.
func BenchmarkDetect(b *testing.B) {
	w := mustWorkload(b, "canneal")
	for i := 0; i < b.N; i++ {
		m := clean.NewMachine(clean.Config{Detection: clean.DetectCLEAN, DeterministicSync: true, Seed: int64(i)})
		root, _ := w.Build(m, workloads.ScaleSimSmall, workloads.Unmodified)
		if err := m.Run(root); err == nil {
			b.Fatal("canneal completed without a race exception")
		}
	}
}

// BenchmarkDeterminism exercises the §6.2.2 determinism experiment: a
// race-free run under full CLEAN, verifying the output fingerprint.
func BenchmarkDeterminism(b *testing.B) {
	w := mustWorkload(b, "barnes")
	var ref uint64
	for i := 0; i < b.N; i++ {
		m := clean.NewMachine(clean.Config{Detection: clean.DetectCLEAN, DeterministicSync: true, Seed: int64(i), YieldEvery: 8})
		root, out := w.Build(m, workloads.ScaleSimSmall, workloads.Modified)
		if err := m.Run(root); err != nil {
			b.Fatal(err)
		}
		h := m.HashMem(out.Addr, out.Len)
		if i == 0 {
			ref = h
		} else if h != ref {
			b.Fatalf("iteration %d: nondeterministic output", i)
		}
	}
}

// BenchmarkDetectors compares the software detectors on one workload
// (the §7/ablation comparison: CLEAN cheaper than precise FastTrack).
func BenchmarkDetectors(b *testing.B) {
	w := mustWorkload(b, "ocean_cp")
	for _, tc := range []struct {
		name string
		d    clean.Detection
	}{
		{"none", clean.DetectNone},
		{"clean", clean.DetectCLEAN},
		{"fasttrack", clean.DetectFastTrack},
		{"tsanlite", clean.DetectTSanLite},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnce(b, w, clean.Config{YieldEvery: 32, Seed: int64(i), Detection: tc.d})
			}
		})
	}
}

// BenchmarkMachineOps measures the bare substrate: cost per simulated
// operation with and without detection.
func BenchmarkMachineOps(b *testing.B) {
	for _, tc := range []struct {
		name string
		d    clean.Detection
	}{
		{"noDetect", clean.DetectNone},
		{"clean", clean.DetectCLEAN},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := clean.NewMachine(clean.Config{YieldEvery: 64, Detection: tc.d})
			a := m.AllocShared(4096, 64)
			b.ResetTimer()
			err := m.Run(func(t *machine.Thread) {
				for i := 0; i < b.N; i++ {
					t.StoreU64(a+uint64(i%512)*8, uint64(i))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkHarnessSmoke runs every experiment end-to-end at test scale —
// the full Fig. 6–11 + Table 1 pipeline in one target.
func BenchmarkHarnessSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := harness.Options{Reps: 1, Scale: workloads.ScaleTest, ScaleSet: true}
		if err := harness.RunAll(discard{}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
